#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/workbench.h"
#include "serve/serve_engine.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::ui {
namespace {

// ----------------------------------------------------------- UrlDecode

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("hate%20speech+detection"), "hate speech detection");
  EXPECT_EQ(UrlDecode("a%2Bb"), "a+b");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(UrlDecodeTest, MalformedPercentPassesThrough) {
  EXPECT_EQ(UrlDecode("50%"), "50%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

// ----------------------------------------------------- ParseRequestLine

TEST(ParseRequestTest, PlainPath) {
  auto r = ParseRequestLine("GET /api/path HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->path, "/api/path");
  EXPECT_EQ(r->version, "HTTP/1.1");
  EXPECT_TRUE(r->query.empty());
}

TEST(ParseRequestTest, QueryParameters) {
  auto r = ParseRequestLine(
      "GET /api/path?q=pretrained%20language+model&seeds=30 HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("q"), "pretrained language model");
  EXPECT_EQ(r->query.at("seeds"), "30");
}

TEST(ParseRequestTest, ValuelessParameter) {
  auto r = ParseRequestLine("GET /x?flag HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("flag"), "");
}

TEST(ParseRequestTest, Http10VersionCaptured) {
  auto r = ParseRequestLine("GET / HTTP/1.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, "HTTP/1.0");
}

TEST(ParseRequestTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x NOTHTTP").ok());
  EXPECT_FALSE(ParseRequestLine("GET relative HTTP/1.1").ok());
}

// ------------------------------------------------------ ParseHeaderLines

TEST(ParseHeadersTest, LowercasesNamesTrimsValues) {
  std::map<std::string, std::string> headers;
  ParseHeaderLines(
      "Host: localhost\r\nConnection:  Keep-Alive \r\nContent-Length: 12\r\n",
      &headers);
  EXPECT_EQ(headers.at("host"), "localhost");
  EXPECT_EQ(headers.at("connection"), "Keep-Alive");
  EXPECT_EQ(headers.at("content-length"), "12");
}

TEST(ParseHeadersTest, SkipsMalformedLines) {
  std::map<std::string, std::string> headers;
  ParseHeaderLines("no colon here\r\nGood: yes\r\n", &headers);
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.at("good"), "yes");
}

TEST(ParseHeadersTest, DuplicateFieldsFoldIntoCommaList) {
  // RFC 7230 §3.2.2 folding; for Content-Length this is what turns two
  // conflicting lengths into an unparseable "5, 6" -> 400 instead of
  // letting either framing win.
  std::map<std::string, std::string> headers;
  ParseHeaderLines("X-Tag: one\r\nX-Tag: two\r\nContent-Length: 5\r\n"
                   "Content-Length: 6\r\n",
                   &headers);
  EXPECT_EQ(headers.at("x-tag"), "one, two");
  EXPECT_EQ(headers.at("content-length"), "5, 6");
}

// ---------------------------------------------------- ParseContentLength

TEST(ParseContentLengthTest, AcceptsPlainDigits) {
  size_t n = 999;
  EXPECT_TRUE(ParseContentLength("0", &n));
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(ParseContentLength("42", &n));
  EXPECT_EQ(n, 42u);
  EXPECT_TRUE(ParseContentLength("1048576", &n));
  EXPECT_EQ(n, 1048576u);
  // The uint64 boundary itself still parses...
  EXPECT_TRUE(ParseContentLength("18446744073709551615", &n));
  EXPECT_EQ(n, UINT64_MAX);
}

TEST(ParseContentLengthTest, RejectsNonNumericSignedAndOverflowing) {
  size_t n = 0;
  EXPECT_FALSE(ParseContentLength("", &n));
  EXPECT_FALSE(ParseContentLength("abc", &n));
  EXPECT_FALSE(ParseContentLength("-1", &n));   // strtoull accepted this as
  EXPECT_FALSE(ParseContentLength("+1", &n));   // a wrapped huge value
  EXPECT_FALSE(ParseContentLength(" 1", &n));
  EXPECT_FALSE(ParseContentLength("1 ", &n));
  EXPECT_FALSE(ParseContentLength("1,2", &n));
  EXPECT_FALSE(ParseContentLength("5, 6", &n));  // folded duplicates
  EXPECT_FALSE(ParseContentLength("0x10", &n));
  EXPECT_FALSE(ParseContentLength("18446744073709551616", &n));  // 2^64
  EXPECT_FALSE(ParseContentLength("99999999999999999999999", &n));
}

// ------------------------------------------------------- FrameOneRequest

TEST(FrameOneRequestTest, IncompleteHeaderNeedsMore) {
  FrameResult r = FrameOneRequest("GET / HTTP/1.1\r\nHost: x\r\n",
                                  /*peer_eof=*/false, FramingLimits{});
  EXPECT_EQ(r.verdict, FrameResult::Verdict::kNeedMore);
  EXPECT_EQ(r.consumed, 0u);
}

TEST(FrameOneRequestTest, CompleteRequestConsumedExactly) {
  const std::string one = "GET /a?x=1 HTTP/1.1\r\nHost: x\r\n\r\n";
  FrameResult r = FrameOneRequest(one, false, FramingLimits{});
  ASSERT_EQ(r.verdict, FrameResult::Verdict::kRequest);
  EXPECT_EQ(r.consumed, one.size());
  EXPECT_EQ(r.request.path, "/a");
  EXPECT_EQ(r.request.query.at("x"), "1");
  EXPECT_TRUE(r.keep_alive);
}

TEST(FrameOneRequestTest, PipelinedBufferFramesOnlyTheFirst) {
  const std::string first = "GET /one HTTP/1.1\r\n\r\n";
  const std::string both = first + "GET /two HTTP/1.1\r\n\r\n";
  FrameResult r = FrameOneRequest(both, false, FramingLimits{});
  ASSERT_EQ(r.verdict, FrameResult::Verdict::kRequest);
  EXPECT_EQ(r.consumed, first.size());
  EXPECT_EQ(r.request.path, "/one");
}

TEST(FrameOneRequestTest, BodyFramedByContentLength) {
  const std::string post =
      "POST /u HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\n"
      "hello";
  FrameResult r = FrameOneRequest(post, false, FramingLimits{});
  ASSERT_EQ(r.verdict, FrameResult::Verdict::kRequest);
  EXPECT_EQ(r.consumed, post.size());
  EXPECT_EQ(r.request.body, "hello");
  EXPECT_FALSE(r.keep_alive);
  // Same bytes minus the last body byte: incomplete.
  FrameResult partial = FrameOneRequest(post.substr(0, post.size() - 1),
                                        false, FramingLimits{});
  EXPECT_EQ(partial.verdict, FrameResult::Verdict::kNeedMore);
}

TEST(FrameOneRequestTest, ProtocolErrorsMapToStatuses) {
  FramingLimits tiny_header;
  tiny_header.max_header_bytes = 32;
  // Oversized (and even unterminated) header block -> 431.
  FrameResult big_header = FrameOneRequest(
      "GET / HTTP/1.1\r\nX: " + std::string(64, 'j'), false, tiny_header);
  ASSERT_EQ(big_header.verdict, FrameResult::Verdict::kError);
  EXPECT_EQ(big_header.error_status, 431);
  // Declared body beyond the cap -> 413, before any body byte arrives.
  FramingLimits tiny_body;
  tiny_body.max_body_bytes = 8;
  FrameResult big_body = FrameOneRequest(
      "POST /u HTTP/1.1\r\nContent-Length: 9\r\n\r\n", false, tiny_body);
  ASSERT_EQ(big_body.verdict, FrameResult::Verdict::kError);
  EXPECT_EQ(big_body.error_status, 413);
  // Unparseable Content-Length -> 400.
  FrameResult bad_length = FrameOneRequest(
      "POST /u HTTP/1.1\r\nContent-Length: 5, 6\r\n\r\n", false,
      FramingLimits{});
  ASSERT_EQ(bad_length.verdict, FrameResult::Verdict::kError);
  EXPECT_EQ(bad_length.error_status, 400);
  // Malformed request line -> 400.
  FrameResult bad_line =
      FrameOneRequest("BOGUS\r\n\r\n", false, FramingLimits{});
  ASSERT_EQ(bad_line.verdict, FrameResult::Verdict::kError);
  EXPECT_EQ(bad_line.error_status, 400);
}

TEST(FrameOneRequestTest, EofOnPartialRequestIsClose) {
  FrameResult r = FrameOneRequest("GET / HTTP/1.1\r\nHos",
                                  /*peer_eof=*/true, FramingLimits{});
  EXPECT_EQ(r.verdict, FrameResult::Verdict::kClose);
  // ...but EOF behind a complete request still frames it.
  FrameResult done =
      FrameOneRequest("GET / HTTP/1.1\r\n\r\n", true, FramingLimits{});
  EXPECT_EQ(done.verdict, FrameResult::Verdict::kRequest);
}

TEST(FrameOneRequestTest, ZeroHeaderRequestAccepted) {
  FrameResult r =
      FrameOneRequest("GET / HTTP/1.1\r\n\r\n", false, FramingLimits{});
  ASSERT_EQ(r.verdict, FrameResult::Verdict::kRequest);
  EXPECT_TRUE(r.request.headers.empty());
  EXPECT_TRUE(r.keep_alive);  // HTTP/1.1 default
}

// ----------------------------------------------------- ParseHttpResponse

TEST(ParseHttpResponseTest, IncompleteNeedsMore) {
  EXPECT_EQ(ParseHttpResponse("HTTP/1.1 200 OK\r\nContent-").verdict,
            ResponseParseResult::Verdict::kNeedMore);
  // Complete header but body still in flight.
  EXPECT_EQ(ParseHttpResponse(
                "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel")
                .verdict,
            ResponseParseResult::Verdict::kNeedMore);
}

TEST(ParseHttpResponseTest, CompleteResponseParsed) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
      "Content-Length: 2\r\n\r\n{}";
  ResponseParseResult r = ParseHttpResponse(wire);
  ASSERT_EQ(r.verdict, ResponseParseResult::Verdict::kResponse);
  EXPECT_EQ(r.consumed, wire.size());
  EXPECT_EQ(r.response.status, 200);
  EXPECT_EQ(r.response.body, "{}");
  EXPECT_EQ(r.response.headers.at("content-type"), "application/json");
}

TEST(ParseHttpResponseTest, PipelinedBufferConsumesOnlyTheFirst) {
  const std::string first =
      "HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n";
  ResponseParseResult r =
      ParseHttpResponse(first + "HTTP/1.1 200 OK\r\n\r\n");
  ASSERT_EQ(r.verdict, ResponseParseResult::Verdict::kResponse);
  EXPECT_EQ(r.consumed, first.size());
  EXPECT_EQ(r.response.status, 204);
}

TEST(ParseHttpResponseTest, MalformedStatusIsError) {
  for (const char* wire :
       {"HTTP/1.1 2x0 Weird\r\n\r\n", "NOTHTTP 200 OK\r\n\r\n",
        "HTTP/1.1 20 OK\r\n\r\n", "HTTP/1.1 099 Low\r\n\r\n"}) {
    ResponseParseResult r = ParseHttpResponse(wire);
    EXPECT_EQ(r.verdict, ResponseParseResult::Verdict::kError) << wire;
    EXPECT_FALSE(r.error.empty()) << wire;
  }
}

TEST(ParseHttpResponseTest, BadContentLengthIsError) {
  ResponseParseResult r = ParseHttpResponse(
      "HTTP/1.1 200 OK\r\nContent-Length: 5, 6\r\n\r\nhello");
  EXPECT_EQ(r.verdict, ResponseParseResult::Verdict::kError);
}

// ------------------------------------------------------------ HttpServer

/// Raw blocking client socket connected to 127.0.0.1:`port`; -1 on error.
int ConnectRaw(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string ReadToEof(int fd) {
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

/// One-shot fetch (Connection: close): reads until EOF.
std::string FetchOnce(int port, const std::string& request_line) {
  int fd = ConnectRaw(port);
  EXPECT_GE(fd, 0);
  std::string request =
      request_line + "\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  return response;
}

/// Polls `predicate` for up to two seconds (reactor cleanup is
/// asynchronous: disconnects are observed on the next epoll wakeup).
bool PollUntil(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(HttpServerTest, ServesHandlerResponses) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "echo:" + request.path;
    return response;
  });
  int port = server.Start(0).value();
  ASSERT_GT(port, 0);
  std::string response = FetchOnce(port, "GET /hello HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("echo:/hello"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, ConnectionCloseHonored) {
  HttpServer server([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "x"};
  });
  int port = server.Start(0).value();
  // FetchOnce sends Connection: close and relies on the server actually
  // closing; a hang here means keep-alive ignored the header.
  std::string response = FetchOnce(port, "GET / HTTP/1.1");
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsPerConnection) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest& request) {
    ++handled;
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  for (int i = 0; i < 5; ++i) {
    auto r = client.Fetch("GET", "/req" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "echo:/req" + std::to_string(i));
    EXPECT_TRUE(client.connected());  // server kept the connection open
  }
  EXPECT_EQ(handled.load(), 5);
  // One keep-alive connection carried everything.
  EXPECT_EQ(server.Stats().connections_accepted, 1u);
  EXPECT_EQ(server.Stats().requests_handled, 5u);
  client.Close();
  server.Stop();
}

TEST(HttpServerTest, PostBodyDelivered) {
  std::string seen_body;
  std::string seen_method;
  HttpServer server([&](const HttpRequest& request) {
    seen_method = request.method;
    seen_body = request.body;
    return HttpResponse{200, "text/plain", "ok"};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string request =
      "POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
      "Connection: close\r\n\r\nhello";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_EQ(seen_method, "POST");
  EXPECT_EQ(seen_body, "hello");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentKeepAliveConnections) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  constexpr int kThreads = 8, kRequests = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(port).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        std::string path = "/t" + std::to_string(t) + "r" + std::to_string(i);
        auto r = client.Fetch("GET", path);
        if (!r.ok() || r->status != 200 || r->body != "echo:" + path) {
          ++failures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestGets400) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  int port = server.Start(0).value();
  std::string response = FetchOnce(port, "BOGUS");
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_EQ(server.Stats().protocol_errors, 1u);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  server.Stop();
  server.Stop();
}

TEST(HttpServerTest, DoubleStartRejected) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

// ------------------------------------------------- reactor edge cases

TEST(HttpServerTest, SlowLorisPartialHeadersDoNotStarveOthers) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();

  // The slow client dribbles its header one fragment at a time...
  int slow = ConnectRaw(port);
  ASSERT_GE(slow, 0);
  const std::string request =
      "GET /slow HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  auto send_fragment = [&](size_t n) {
    n = std::min(n, request.size() - sent);
    ASSERT_EQ(::write(slow, request.data() + sent, n),
              static_cast<ssize_t>(n));
    sent += n;
  };
  send_fragment(3);  // "GET"
  // ...while a normal client gets served between the fragments: the
  // reactor multiplexes, a blocking read of the slow header would hang
  // this fetch forever.
  std::string other = FetchOnce(port, "GET /fast HTTP/1.1");
  EXPECT_NE(other.find("echo:/fast"), std::string::npos);
  send_fragment(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  other = FetchOnce(port, "GET /fast2 HTTP/1.1");
  EXPECT_NE(other.find("echo:/fast2"), std::string::npos);
  // Finish the slow request; it must complete normally.
  send_fragment(request.size());
  std::string slow_response = ReadToEof(slow);
  ::close(slow);
  EXPECT_NE(slow_response.find("echo:/slow"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, FragmentedBodyReassembled) {
  std::string seen_body;
  HttpServer server([&](const HttpRequest& request) {
    seen_body = request.body;
    return HttpResponse{200, "text/plain", "got " +
                        std::to_string(request.body.size())};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string body(1000, 'x');
  body[0] = 'a';
  body[999] = 'z';
  std::string head =
      "POST /u HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n"
      "Connection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, head.data(), head.size()),
            static_cast<ssize_t>(head.size()));
  // Body in 100-byte fragments with pauses: each arrives as its own
  // read event and the state machine keeps accumulating.
  for (size_t off = 0; off < body.size(); off += 100) {
    ASSERT_EQ(::write(fd, body.data() + off, 100), 100);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("got 1000"), std::string::npos);
  EXPECT_EQ(seen_body, body);
  server.Stop();
}

TEST(HttpServerTest, OversizedHeaderRejected431) {
  HttpServerOptions options;
  options.max_header_bytes = 64 * 1024;
  HttpServer server(
      [](const HttpRequest&) { return HttpResponse{}; }, options);
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  // 80K of header bytes with no terminator.
  std::string junk = "GET / HTTP/1.1\r\nX-Junk: ";
  junk.append(80 * 1024, 'j');
  ASSERT_GT(::write(fd, junk.data(), junk.size()), 0);
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("431"), std::string::npos);
  EXPECT_EQ(server.Stats().protocol_errors, 1u);
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  server.Stop();
}

TEST(HttpServerTest, CompleteOversizedHeaderAlsoRejected431) {
  // The whole oversized block — terminator included — arrives in one
  // burst, so the incomplete-header size check never sees it; the
  // complete-block check must reject it anyway.
  HttpServer server([](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "should not run"};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string junk = "GET / HTTP/1.1\r\nX-Junk: ";
  junk.append(80 * 1024, 'j');
  junk += "\r\n\r\n";
  size_t sent = 0;
  while (sent < junk.size()) {
    ssize_t n = ::write(fd, junk.data() + sent, junk.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("431"), std::string::npos);
  EXPECT_EQ(response.find("should not run"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsBeforeFinAllAnswered) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  // Send-then-FIN client: both pipelined requests are in flight when
  // the half-close lands, and both must still be answered.
  std::string two =
      "GET /one HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /two HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, two.data(), two.size()),
            static_cast<ssize_t>(two.size()));
  ::shutdown(fd, SHUT_WR);
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("echo:/one"), std::string::npos);
  EXPECT_NE(response.find("echo:/two"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyRejected413) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  // Declares 2 MiB against the 1 MiB default cap; the server must
  // reject on the declaration without reading the body.
  std::string head =
      "POST /u HTTP/1.1\r\nHost: x\r\nContent-Length: 2097152\r\n\r\n";
  ASSERT_EQ(::write(fd, head.data(), head.size()),
            static_cast<ssize_t>(head.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("413"), std::string::npos);
  EXPECT_NE(response.find("body too large"), std::string::npos);
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string two =
      "GET /one HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /two HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, two.data(), two.size()),
            static_cast<ssize_t>(two.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  size_t first = response.find("echo:/one");
  size_t second = response.find("echo:/two");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  server.Stop();
}

TEST(HttpServerTest, LargePipelinedBurstServedIteratively) {
  // 2000 pipelined requests in one write: the pump must iterate, not
  // recurse per request (recursion depth would be client-controlled).
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest&) {
    ++handled;
    return HttpResponse{200, "text/plain", "ok"};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  constexpr int kBurst = 2000;
  std::string burst;
  for (int i = 0; i < kBurst - 1; ++i) burst += "GET /p HTTP/1.1\r\n\r\n";
  burst += "GET /p HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_EQ(handled.load(), kBurst);
  size_t ok_count = 0;
  for (size_t at = response.find("200 OK"); at != std::string::npos;
       at = response.find("200 OK", at + 1)) {
    ++ok_count;
  }
  EXPECT_EQ(ok_count, static_cast<size_t>(kBurst));
  server.Stop();
}

TEST(HttpServerTest, PartialWritesDeliverLargeResponseIntact) {
  // 8 MiB body: far beyond any socket buffer, so the reactor must park
  // the connection on EPOLLOUT and resume writing as the slow client
  // drains — repeatedly.
  std::string big(8 * 1024 * 1024, 'b');
  big.front() = 'A';
  big.back() = 'Z';
  HttpServer server([&](const HttpRequest&) {
    return HttpResponse{200, "application/octet-stream", big};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  // Small-but-not-tiny receive buffer: the 8 MiB response overflows the
  // server's send buffer many times over (forcing EPOLLOUT round trips)
  // without dropping the TCP window so low that delayed ACKs dominate.
  int rcvbuf = 64 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  std::string request = "GET /big HTTP/1.1\r\nHost: x\r\n"
                        "Connection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(response.substr(body_at + 4), big);
  server.Stop();
}

TEST(HttpServerTest, AbruptDisconnectMidResponseLeaksNoFd) {
  std::string big(8 * 1024 * 1024, 'b');
  HttpServer server([&](const HttpRequest&) {
    return HttpResponse{200, "application/octet-stream", big};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string request = "GET /big HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // Read a token amount, then vanish with the response mid-flight.
  char buf[1024];
  ASSERT_GT(::read(fd, buf, sizeof(buf)), 0);
  struct linger hard_close {1, 0};  // RST instead of FIN: truly abrupt
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
  ::close(fd);
  // The write side must observe the reset and release the fd.
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  server.Stop();
}

TEST(HttpServerTest, DisconnectDuringAsyncComputeReclaimsConnection) {
  // An async handler that never completes until told: the connection
  // dies while "compute" is in flight, and the late completion must be
  // dropped without touching a recycled fd.
  std::mutex mu;
  std::vector<HttpServer::Done> parked;
  HttpServer server([&](const HttpRequest&, HttpServer::Done done) {
    std::lock_guard<std::mutex> lock(mu);
    parked.push_back(std::move(done));
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string request = "GET /hang HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  EXPECT_TRUE(PollUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return parked.size() == 1;
  }));
  // The client gives up while the handler still holds `done`. RST (via
  // SO_LINGER 0) rather than FIN: a half-close would still allow the
  // response through, an abort must reclaim the fd immediately.
  struct linger hard_close {1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
  ::close(fd);
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  // Late completion: safe no-op.
  {
    std::lock_guard<std::mutex> lock(mu);
    parked.front()(HttpResponse{200, "text/plain", "too late"});
    parked.clear();
  }
  server.Stop();
}

TEST(HttpServerTest, AsyncHandlerCompletesFromAnotherThread) {
  // Responses posted from a foreign thread reach the right connection,
  // and the poller is never blocked while the "compute" runs.
  HttpServer server([](const HttpRequest& request, HttpServer::Done done) {
    std::thread([path = request.path, done = std::move(done)] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done(HttpResponse{200, "text/plain", "deferred:" + path});
    }).detach();
  });
  int port = server.Start(0).value();
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string path = "/job" + std::to_string(c);
      std::string response = FetchOnce(port, "GET " + path + " HTTP/1.1");
      if (response.find("deferred:" + path) == std::string::npos) ++failures;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

// ------------------------------------------- connection lifecycle / limits

TEST(HttpServerTest, MalformedContentLengthRejected400) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest&) {
    ++handled;
    return HttpResponse{200, "text/plain", "should not run"};
  });
  int port = server.Start(0).value();
  const char* bad_lengths[] = {"abc", "-1", "18446744073709551616", "1 2",
                               "0x10"};
  for (const char* bad : bad_lengths) {
    int fd = ConnectRaw(port);
    ASSERT_GE(fd, 0);
    std::string request = std::string("POST /u HTTP/1.1\r\nHost: x\r\n") +
                          "Content-Length: " + bad + "\r\n\r\nhello";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response = ReadToEof(fd);
    ::close(fd);
    EXPECT_NE(response.find("400"), std::string::npos) << bad;
    EXPECT_NE(response.find("Content-Length"), std::string::npos) << bad;
  }
  // The old strtoull parsed all of these as 0 and re-read "hello" as the
  // next pipelined request; none of them may reach the handler.
  EXPECT_EQ(handled.load(), 0);
  EXPECT_EQ(server.Stats().protocol_errors,
            sizeof(bad_lengths) / sizeof(bad_lengths[0]));
  server.Stop();
}

TEST(HttpServerTest, ConflictingDuplicateContentLengthRejected400) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest&) {
    ++handled;
    return HttpResponse{200, "text/plain", "should not run"};
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  // Request-smuggling shape: two framings for one body.
  std::string request =
      "POST /u HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
      "Content-Length: 6\r\n\r\nhello!";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_EQ(handled.load(), 0);
  server.Stop();
}

TEST(HttpServerTest, IdleConnectionReapedByDeadline) {
  HttpServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(100);
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    options);
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(PollUntil([&] { return server.Stats().open_connections == 1; }));
  // Send nothing at all: the server must actively close within the
  // deadline instead of holding the fd forever.
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  EXPECT_EQ(server.Stats().idle_closes, 1u);
  char buf[16];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);  // clean EOF, not a hang
  ::close(fd);
  server.Stop();
}

TEST(HttpServerTest, SlowLorisDripIsReapedOnSchedule) {
  HttpServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(150);
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; },
                    options);
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  const char head[] = "GET /x HTTP/1.1\r\nX-Drip: ";
  ASSERT_GT(::send(fd, head, sizeof(head) - 1, MSG_NOSIGNAL), 0);
  ASSERT_TRUE(PollUntil([&] { return server.Stats().open_connections == 1; }));
  // Keep dripping one byte every 30 ms: the idle clock is armed at
  // accept and NOT reset by partial bytes, so the drip does not extend
  // the connection's life. 20 drips = 600 ms >> the 150 ms deadline.
  bool reaped = false;
  for (int i = 0; i < 20 && !reaped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::send(fd, "a", 1, MSG_NOSIGNAL);  // may fail once reaped: fine
    reaped = server.Stats().open_connections == 0;
  }
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  EXPECT_GE(server.Stats().idle_closes, 1u);
  ::close(fd);
  server.Stop();
}

TEST(HttpServerTest, ActiveKeepAliveConnectionOutlivesIdleDeadline) {
  HttpServerOptions options;
  // Generous margin between the gap (200 ms) and the deadline (600 ms):
  // the property under test is the re-arm, not scheduler jitter.
  options.idle_timeout = std::chrono::milliseconds(600);
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  }, options);
  int port = server.Start(0).value();
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  // Each completed request re-arms the idle window, so a connection
  // active for 4 x 200 ms > 600 ms total stays alive throughout...
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    auto r = client.Fetch("GET", "/tick");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  EXPECT_EQ(server.Stats().connections_accepted, 1u);
  // ...and once the client goes quiet, the deadline reaps it.
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  EXPECT_EQ(server.Stats().idle_closes, 1u);
  client.Close();
  server.Stop();
}

TEST(HttpServerTest, ConnectionCapShedsWith503) {
  HttpServerOptions options;
  options.max_connections = 2;
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  }, options);
  int port = server.Start(0).value();
  // Two keep-alive connections fill the cap (the fetches guarantee both
  // were actually accepted, not just SYN-queued).
  HttpClient a, b;
  ASSERT_TRUE(a.Connect(port).ok());
  ASSERT_TRUE(b.Connect(port).ok());
  ASSERT_TRUE(a.Fetch("GET", "/a").ok());
  ASSERT_TRUE(b.Fetch("GET", "/b").ok());
  EXPECT_EQ(server.Stats().open_connections, 2u);
  // The third connection is shed at accept: inline 503 + close, no fd
  // held, no silent leak.
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("Retry-After"), std::string::npos);
  EXPECT_EQ(server.Stats().connections_shed, 1u);
  EXPECT_EQ(server.Stats().open_connections, 2u);
  // The capped-out server still serves its existing connections.
  auto again = a.Fetch("GET", "/again");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->body, "echo:/again");
  // Capacity freed -> new connections are accepted again.
  a.Close();
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 1; }));
  HttpClient c;
  ASSERT_TRUE(c.Connect(port).ok());
  auto ok = c.Fetch("GET", "/c");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  b.Close();
  c.Close();
  server.Stop();
}

TEST(HttpServerTest, StopDrainsInFlightRequestBeforeClosing) {
  // An async handler parks the completion; Stop() must wait for it (up
  // to drain_timeout) and still deliver the response, instead of
  // cutting the connection with the request half-served.
  std::mutex mu;
  std::vector<HttpServer::Done> parked;
  HttpServer server([&](const HttpRequest&, HttpServer::Done done) {
    std::lock_guard<std::mutex> lock(mu);
    parked.push_back(std::move(done));
  });
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string request = "GET /work HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ASSERT_TRUE(PollUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return parked.size() == 1;
  }));
  std::thread stopper([&] { server.Stop(); });
  // "Compute" finishes mid-drain, from a foreign thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(server.running());
  {
    std::lock_guard<std::mutex> lock(mu);
    parked.front()(HttpResponse{200, "text/plain", "drained-result"});
    parked.clear();
  }
  stopper.join();
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("drained-result"), std::string::npos);
  // The drain forced the connection closed behind the response.
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST(HttpServerTest, StopClosesIdleConnectionsWithoutWaitingForDrain) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  ASSERT_TRUE(client.Fetch("GET", "/x").ok());
  // The keep-alive connection is idle; Stop() must shed it immediately,
  // not consume the (default 5 s) drain budget.
  auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_EQ(server.Stats().open_connections, 0u);
  client.Close();
}

TEST(HttpServerTest, ExtraResponseHeadersRendered) {
  HttpServer server([](const HttpRequest&) {
    HttpResponse response{429, "text/plain", "slow down"};
    response.headers["Retry-After"] = "7";
    return response;
  });
  int port = server.Start(0).value();
  std::string response = FetchOnce(port, "GET /x HTTP/1.1");
  EXPECT_NE(response.find("429 Too Many Requests"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 7"), std::string::npos);
  EXPECT_NE(response.find("slow down"), std::string::npos);
  server.Stop();
}

// ----------------------------------------------------- handler deadlines

TEST(HttpServerTest, WedgedHandlerReapedWith503WhileOthersServe) {
  // A handler that never completes /wedge: the per-poller deadline heap
  // must answer 503 within handler_timeout and close the connection,
  // while every other connection keeps being served throughout.
  std::mutex mu;
  std::vector<HttpServer::Done> parked;
  HttpServerOptions options;
  options.handler_timeout = std::chrono::milliseconds(200);
  HttpServer server(
      [&](const HttpRequest& request, HttpServer::Done done) {
        if (request.path == "/wedge") {
          std::lock_guard<std::mutex> lock(mu);
          parked.push_back(std::move(done));
          return;
        }
        done(HttpResponse{200, "text/plain", "echo:" + request.path});
      },
      options);
  int port = server.Start(0).value();
  int wedged = ConnectRaw(port);
  ASSERT_GE(wedged, 0);
  const std::string request = "GET /wedge HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(wedged, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ASSERT_TRUE(PollUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return parked.size() == 1;
  }));
  // While the wedge is pending, healthy traffic flows.
  std::string other = FetchOnce(port, "GET /ok HTTP/1.1");
  EXPECT_NE(other.find("echo:/ok"), std::string::npos);
  // The wedged client gets its 503 + close within the deadline (the
  // ReadToEof return bounds the reap: EOF only after the server closes).
  auto t0 = std::chrono::steady_clock::now();
  std::string response = ReadToEof(wedged);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  ::close(wedged);
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("deadline"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::milliseconds(1200));
  EXPECT_EQ(server.Stats().deadline_closes, 1u);
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 0; }));
  // ...and the server was never blocked on the corpse.
  std::string after = FetchOnce(port, "GET /after HTTP/1.1");
  EXPECT_NE(after.find("echo:/after"), std::string::npos);
  // Late completion long after the reap: a safe no-op.
  {
    std::lock_guard<std::mutex> lock(mu);
    parked.front()(HttpResponse{200, "text/plain", "too late"});
    parked.clear();
  }
  std::string still = FetchOnce(port, "GET /still HTTP/1.1");
  EXPECT_NE(still.find("echo:/still"), std::string::npos);
  EXPECT_EQ(server.Stats().deadline_closes, 1u);
  server.Stop();
}

TEST(HttpServerTest, HandlerTimeoutZeroDisablesReaping) {
  std::mutex mu;
  std::vector<HttpServer::Done> parked;
  HttpServerOptions options;
  options.handler_timeout = std::chrono::milliseconds(0);  // disabled
  options.idle_timeout = std::chrono::seconds(30);  // not under test
  HttpServer server(
      [&](const HttpRequest&, HttpServer::Done done) {
        std::lock_guard<std::mutex> lock(mu);
        parked.push_back(std::move(done));
      },
      options);
  int port = server.Start(0).value();
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /slow HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ASSERT_TRUE(PollUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return parked.size() == 1;
  }));
  // Longer than any small deadline: with the timeout off, nothing reaps.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(server.Stats().deadline_closes, 0u);
  EXPECT_EQ(server.Stats().open_connections, 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    parked.front()(HttpResponse{200, "text/plain", "worth the wait"});
    parked.clear();
  }
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("worth the wait"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, SynchronousHandlersUnaffectedByHandlerTimeout) {
  // Fast requests under a tight deadline: completions disarm the timer,
  // so keep-alive traffic never trips it.
  HttpServerOptions options;
  options.handler_timeout = std::chrono::milliseconds(100);
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  }, options);
  int port = server.Start(0).value();
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  for (int i = 0; i < 4; ++i) {
    auto r = client.Fetch("GET", "/tick" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
    // Dwell past the handler deadline between requests: idle time
    // between requests must not count against the next handler.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  EXPECT_EQ(server.Stats().deadline_closes, 0u);
  client.Close();
  server.Stop();
}

// ------------------------------------------------------- per-IP capping

TEST(HttpServerTest, PerIpCapShedsExcessConnections) {
  HttpServerOptions options;
  options.max_connections_per_ip = 2;
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  }, options);
  int port = server.Start(0).value();
  // Two loopback connections fill this IP's allowance...
  HttpClient a, b;
  ASSERT_TRUE(a.Connect(port).ok());
  ASSERT_TRUE(b.Connect(port).ok());
  ASSERT_TRUE(a.Fetch("GET", "/a").ok());
  ASSERT_TRUE(b.Fetch("GET", "/b").ok());
  // ...so the third from the same IP is shed at accept with a 503.
  int fd = ConnectRaw(port);
  ASSERT_GE(fd, 0);
  std::string response = ReadToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server.Stats().per_ip_shed, 1u);
  EXPECT_EQ(server.Stats().open_connections, 2u);
  // Existing connections are unaffected by the shed.
  auto again = a.Fetch("GET", "/again");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->body, "echo:/again");
  // Closing one frees the slot for the same IP.
  a.Close();
  EXPECT_TRUE(PollUntil([&] { return server.Stats().open_connections == 1; }));
  HttpClient c;
  ASSERT_TRUE(c.Connect(port).ok());
  auto ok = c.Fetch("GET", "/c");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  b.Close();
  c.Close();
  server.Stop();
}

TEST(HttpServerTest, PerIpCapOffByDefault) {
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "echo:" + request.path};
  });
  int port = server.Start(0).value();
  // Well more same-IP connections than any sane per-IP cap would allow.
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<HttpClient>());
    ASSERT_TRUE(clients.back()->Connect(port).ok());
    ASSERT_TRUE(clients.back()->Fetch("GET", "/x").ok());
  }
  EXPECT_EQ(server.Stats().per_ip_shed, 0u);
  EXPECT_EQ(server.Stats().open_connections, 6u);
  for (auto& client : clients) client->Close();
  server.Stop();
}

// --------------------------------------------------------- RePagerService

class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 50;
    options.corpus.papers_per_area = 15;
    options.corpus.papers_per_domain = 10;
    options.corpus.num_surveys = 40;
    options.corpus.seed = 55;
    wb_ = eval::Workbench::Create(options).value().release();
    serve::ServeEngineOptions serve_options;
    serve_options.num_threads = 2;
    engine_ = new serve::ServeEngine(&wb_->repager(), serve_options);
    service_ = new RePagerService(engine_, &wb_->repager(), &wb_->titles(),
                                  &wb_->years());
  }
  static void TearDownTestSuite() {
    delete service_;
    delete engine_;
    delete wb_;
  }
  static const eval::Workbench* wb_;
  static serve::ServeEngine* engine_;
  static RePagerService* service_;
};

const eval::Workbench* ServiceFixture::wb_ = nullptr;
serve::ServeEngine* ServiceFixture::engine_ = nullptr;
RePagerService* ServiceFixture::service_ = nullptr;

TEST_F(ServiceFixture, IndexPageServed) {
  HttpRequest request{"GET", "/", {}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("RePaGer"), std::string::npos);
  EXPECT_NE(response.content_type.find("text/html"), std::string::npos);
}

TEST_F(ServiceFixture, PathApiReturnsJson) {
  const auto& entry = wb_->bank().Get(0);
  HttpRequest request{"GET", "/api/path", {{"q", entry.query}}};
  HttpResponse response = service_->Handle(request);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"read_first\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"reading_order\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"from_engine\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"cache_hit\":"), std::string::npos);
}

TEST_F(ServiceFixture, RepeatedQueryIsCacheHit) {
  const auto& entry = wb_->bank().Get(1);
  HttpRequest request{"GET", "/api/path", {{"q", entry.query}}};
  HttpResponse first = service_->Handle(request);
  ASSERT_EQ(first.status, 200) << first.body;
  HttpResponse second = service_->Handle(request);
  ASSERT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"cache_hit\":true"), std::string::npos);
  // Identical payload apart from the serving metadata: same nodes/edges.
  auto strip = [](std::string s) {
    size_t a = s.find("\"nodes\":");
    return s.substr(a);
  };
  EXPECT_EQ(strip(first.body), strip(second.body));
}

TEST_F(ServiceFixture, StatsEndpointReportsLiveCounters) {
  HttpRequest request{"GET", "/api/stats", {}};
  HttpResponse response = service_->Handle(request);
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cache\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"batcher\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"requests_total\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"e2e_ms\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"negative_entries\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"inflight_requests\":"), std::string::npos);
  // Overload-control instruments (batcher queue bound + shed counter).
  EXPECT_NE(response.body.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"max_queue_depth\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"rejected_overload\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"shed_total\":"), std::string::npos);
  // Deadline instruments (queue expiry + handler-reap counters).
  EXPECT_NE(response.body.find("\"deadline_exceeded_total\":"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"deadline_expired\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"queue_deadline_ms\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"ewma_item_seconds\":"), std::string::npos);
}

TEST_F(ServiceFixture, CacheClearEndpoint) {
  const auto& entry = wb_->bank().Get(0);
  service_->Handle({"GET", "/api/path", {{"q", entry.query}}});
  HttpRequest clear{"POST", "/api/cache/clear", {}};
  HttpResponse response = service_->Handle(clear);
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cleared\":true"), std::string::npos);
  EXPECT_EQ(engine_->cache().Stats().entries, 0u);
}

TEST_F(ServiceFixture, MissingQueryParameterIs400) {
  HttpRequest request{"GET", "/api/path", {}};
  EXPECT_EQ(service_->Handle(request).status, 400);
}

TEST_F(ServiceFixture, MalformedSeedsParameterIs400) {
  // atoi silently turned all of these into 0 (pipeline default) or a
  // negative seed count; each must now be an explicit client error.
  for (const char* bad : {"abc", "-5", "0", "1001", "", "3x", " 7"}) {
    HttpRequest request{"GET", "/api/path", {{"q", "x"}, {"seeds", bad}}};
    HttpResponse response = service_->Handle(request);
    EXPECT_EQ(response.status, 400) << "seeds=" << bad;
    EXPECT_NE(response.body.find("seeds"), std::string::npos) << bad;
  }
}

TEST_F(ServiceFixture, MalformedYearParameterIs400) {
  for (const char* bad : {"abc", "-2020", "99999", "20x0", "999", "2101"}) {
    HttpRequest request{"GET", "/api/path", {{"q", "x"}, {"year", bad}}};
    HttpResponse response = service_->Handle(request);
    EXPECT_EQ(response.status, 400) << "year=" << bad;
    EXPECT_NE(response.body.find("year"), std::string::npos) << bad;
  }
}

TEST_F(ServiceFixture, InRangeSeedsAndYearStillServe) {
  const auto& entry = wb_->bank().Get(0);
  HttpRequest request{"GET",
                      "/api/path",
                      {{"q", entry.query},
                       {"seeds", "25"},
                       {"year", std::to_string(entry.year)}}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST_F(ServiceFixture, UnknownRouteIs404) {
  HttpRequest request{"GET", "/nope", {}};
  EXPECT_EQ(service_->Handle(request).status, 404);
}

TEST_F(ServiceFixture, WrongMethodRejected) {
  HttpRequest post_path{"POST", "/api/path", {{"q", "x"}}};
  EXPECT_EQ(service_->Handle(post_path).status, 405);
  HttpRequest put{"PUT", "/api/path", {{"q", "x"}}};
  EXPECT_EQ(service_->Handle(put).status, 405);
  HttpRequest post_unknown{"POST", "/nope", {}};
  EXPECT_EQ(service_->Handle(post_unknown).status, 404);
}

TEST_F(ServiceFixture, HopelessQueryIsClientVisibleError) {
  HttpRequest request{"GET", "/api/path", {{"q", "zzzz qqqq wwww"}}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("error"), std::string::npos);
  // Second hit of the hopeless query is a negative cache hit — same
  // client-visible error, no recompute.
  HttpResponse again = service_->Handle(request);
  EXPECT_EQ(again.status, 404);
  EXPECT_GE(engine_->cache().Stats().negative_hits, 1u);
}

TEST_F(ServiceFixture, EndToEndOverSocket) {
  HttpServer server(
      [&](const HttpRequest& request, HttpServer::Done done) {
        service_->HandleAsync(request, std::move(done));
      });
  service_->AttachServer(&server);
  int port = server.Start(0).value();
  const auto& entry = wb_->bank().Get(0);
  std::string q;
  for (char c : entry.query) q += (c == ' ') ? '+' : c;
  HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  auto path = client.Fetch("GET", "/api/path?q=" + q);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->status, 200);
  EXPECT_NE(path->body.find("reading_order"), std::string::npos);
  // Same connection: stats (with the reactor's http section), then
  // cache clear via POST.
  auto stats = client.Fetch("GET", "/api/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"http\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"open_connections\":1"), std::string::npos);
  // Lifecycle gauges ride along: the connection cap next to the open
  // count, plus the shed/reap counters.
  EXPECT_NE(stats->body.find("\"max_connections\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"connections_shed\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"idle_closes\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"timeout_closes\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"deadline_closes\":"), std::string::npos);
  EXPECT_NE(stats->body.find("\"per_ip_shed\":"), std::string::npos);
  auto clear = client.Fetch("POST", "/api/cache/clear");
  ASSERT_TRUE(clear.ok());
  EXPECT_EQ(clear->status, 200);
  EXPECT_NE(clear->body.find("\"cleared\":true"), std::string::npos);
  client.Close();
  server.Stop();
  service_->AttachServer(nullptr);
}

TEST_F(ServiceFixture, StatsGaugeTracksDisconnects) {
  HttpServer server(
      [&](const HttpRequest& request, HttpServer::Done done) {
        service_->HandleAsync(request, std::move(done));
      });
  service_->AttachServer(&server);
  int port = server.Start(0).value();
  // Open a few keep-alive connections, then sever them abruptly; the
  // /api/stats open-connection gauge (read over a fresh connection)
  // must fall back to 1 — just the probe itself. This is the
  // fd-leak assertion of docs/serving.md.
  std::vector<int> fds;
  for (int i = 0; i < 3; ++i) {
    int fd = ConnectRaw(port);
    ASSERT_GE(fd, 0);
    std::string request = "GET /api/stats HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    char buf[256];
    ASSERT_GT(::read(fd, buf, sizeof(buf)), 0);  // server saw us
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  auto gauge = [&]() -> long {
    HttpClient probe;
    if (!probe.Connect(port).ok()) return -1;
    auto r = probe.Fetch("GET", "/api/stats", /*close_connection=*/true);
    if (!r.ok()) return -1;
    size_t at = r->body.find("\"open_connections\":");
    if (at == std::string::npos) return -1;
    return std::atol(r->body.c_str() + at + std::strlen("\"open_connections\":"));
  };
  EXPECT_TRUE(PollUntil([&] { return gauge() == 1; }));
  server.Stop();
  service_->AttachServer(nullptr);
}

}  // namespace
}  // namespace rpg::ui
