#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "eval/workbench.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::ui {
namespace {

// ----------------------------------------------------------- UrlDecode

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("hate%20speech+detection"), "hate speech detection");
  EXPECT_EQ(UrlDecode("a%2Bb"), "a+b");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(UrlDecodeTest, MalformedPercentPassesThrough) {
  EXPECT_EQ(UrlDecode("50%"), "50%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

// ----------------------------------------------------- ParseRequestLine

TEST(ParseRequestTest, PlainPath) {
  auto r = ParseRequestLine("GET /api/path HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->path, "/api/path");
  EXPECT_TRUE(r->query.empty());
}

TEST(ParseRequestTest, QueryParameters) {
  auto r = ParseRequestLine(
      "GET /api/path?q=pretrained%20language+model&seeds=30 HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("q"), "pretrained language model");
  EXPECT_EQ(r->query.at("seeds"), "30");
}

TEST(ParseRequestTest, ValuelessParameter) {
  auto r = ParseRequestLine("GET /x?flag HTTP/1.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->query.at("flag"), "");
}

TEST(ParseRequestTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x NOTHTTP").ok());
  EXPECT_FALSE(ParseRequestLine("GET relative HTTP/1.1").ok());
}

// ------------------------------------------------------------ HttpServer

std::string FetchOnce(int port, const std::string& request_line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesHandlerResponses) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "echo:" + request.path;
    return response;
  });
  int port = server.Start(0).value();
  ASSERT_GT(port, 0);
  std::string response = FetchOnce(port, "GET /hello HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("echo:/hello"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, MalformedRequestGets400) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  int port = server.Start(0).value();
  std::string response = FetchOnce(port, "BOGUS");
  EXPECT_NE(response.find("400"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  server.Stop();
  server.Stop();
}

TEST(HttpServerTest, DoubleStartRejected) {
  HttpServer server([](const HttpRequest&) { return HttpResponse{}; });
  server.Start(0).value();
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

// --------------------------------------------------------- RePagerService

class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 50;
    options.corpus.papers_per_area = 15;
    options.corpus.papers_per_domain = 10;
    options.corpus.num_surveys = 40;
    options.corpus.seed = 55;
    wb_ = eval::Workbench::Create(options).value().release();
    service_ = new RePagerService(&wb_->repager(), &wb_->titles(),
                                  &wb_->years());
  }
  static void TearDownTestSuite() {
    delete service_;
    delete wb_;
  }
  static const eval::Workbench* wb_;
  static const RePagerService* service_;
};

const eval::Workbench* ServiceFixture::wb_ = nullptr;
const RePagerService* ServiceFixture::service_ = nullptr;

TEST_F(ServiceFixture, IndexPageServed) {
  HttpRequest request{"GET", "/", {}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("RePaGer"), std::string::npos);
  EXPECT_NE(response.content_type.find("text/html"), std::string::npos);
}

TEST_F(ServiceFixture, PathApiReturnsJson) {
  const auto& entry = wb_->bank().Get(0);
  HttpRequest request{"GET", "/api/path", {{"q", entry.query}}};
  HttpResponse response = service_->Handle(request);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"read_first\":"), std::string::npos);
  EXPECT_NE(response.body.find("\"reading_order\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"from_engine\":"), std::string::npos);
}

TEST_F(ServiceFixture, MissingQueryParameterIs400) {
  HttpRequest request{"GET", "/api/path", {}};
  EXPECT_EQ(service_->Handle(request).status, 400);
}

TEST_F(ServiceFixture, UnknownRouteIs404) {
  HttpRequest request{"GET", "/nope", {}};
  EXPECT_EQ(service_->Handle(request).status, 404);
}

TEST_F(ServiceFixture, NonGetRejected) {
  HttpRequest request{"POST", "/api/path", {{"q", "x"}}};
  EXPECT_EQ(service_->Handle(request).status, 400);
}

TEST_F(ServiceFixture, HopelessQueryIsClientVisibleError) {
  HttpRequest request{"GET", "/api/path", {{"q", "zzzz qqqq wwww"}}};
  HttpResponse response = service_->Handle(request);
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("error"), std::string::npos);
}

TEST_F(ServiceFixture, EndToEndOverSocket) {
  HttpServer server(
      [&](const HttpRequest& request) { return service_->Handle(request); });
  int port = server.Start(0).value();
  const auto& entry = wb_->bank().Get(0);
  std::string q;
  for (char c : entry.query) q += (c == ' ') ? '+' : c;
  std::string response = FetchOnce(port, "GET /api/path?q=" + q + " HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("reading_order"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace rpg::ui
