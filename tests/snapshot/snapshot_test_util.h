#ifndef RPG_TESTS_SNAPSHOT_SNAPSHOT_TEST_UTIL_H_
#define RPG_TESTS_SNAPSHOT_SNAPSHOT_TEST_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "eval/workbench.h"
#include "snapshot/snapshot_writer.h"

namespace rpg::snapshot {

/// Process-wide small workbench shared by every snapshot suite (built
/// once, intentionally leaked — the corpus build dominates test time).
inline const eval::Workbench& TestWorkbench() {
  static const eval::Workbench* wb = [] {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 50;
    options.corpus.papers_per_area = 15;
    options.corpus.papers_per_domain = 10;
    options.corpus.num_surveys = 40;
    options.corpus.seed = 55;
    return eval::Workbench::Create(options).value().release();
  }();
  return *wb;
}

/// The writer input corresponding to TestWorkbench().
inline SnapshotInput TestInput() {
  const eval::Workbench& wb = TestWorkbench();
  SnapshotInput input;
  input.graph = &wb.corpus().citations;
  input.titles = &wb.titles();
  input.years = &wb.years();
  input.pagerank = &wb.pagerank();
  input.venue_scores = &wb.venue_scores();
  input.engine = &wb.google();
  input.matcher = &wb.matcher();
  input.corpus_seed = 55;
  return input;
}

/// Snapshot of TestWorkbench() on disk, written once per variant.
inline const std::string& TestSnapshotPath(bool relabel) {
  static const std::string* paths[2] = {nullptr, nullptr};
  const int slot = relabel ? 1 : 0;
  if (paths[slot] == nullptr) {
    auto path = (std::filesystem::temp_directory_path() /
                 (relabel ? "rpg_test_relabel.snap" : "rpg_test.snap"))
                    .string();
    SnapshotWriterOptions options;
    options.relabel = relabel;
    Status status = WriteSnapshot(TestInput(), path, options);
    if (!status.ok()) {
      std::fprintf(stderr, "test snapshot write failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    paths[slot] = new std::string(path);
  }
  return *paths[slot];
}

/// The snapshot file's bytes (for FromBuffer / corruption tests).
inline std::vector<uint8_t> TestSnapshotImage(bool relabel) {
  std::ifstream is(TestSnapshotPath(relabel), std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(is),
                              std::istreambuf_iterator<char>());
}

}  // namespace rpg::snapshot

#endif  // RPG_TESTS_SNAPSHOT_SNAPSHOT_TEST_UTIL_H_
