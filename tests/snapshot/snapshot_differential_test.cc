// The differential identity layer: a snapshot-loaded serving substrate
// must answer the full query set BIT-IDENTICALLY to the in-memory
// rebuild it was written from — serially, batched, and through the HTTP
// JSON rendering (timing fields stripped). Relabeled snapshots permute
// ids, so their identity is asserted at the substrate level through the
// id map (every per-paper array, the graph, and full BM25 result sets
// map back exactly); floating-point tie-breaks make naive end-to-end
// id-equality meaningless there by design.

#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "serve/serve_engine.h"
#include "snapshot/serving_state.h"
#include "ui/repager_service.h"

#include "snapshot_test_util.h"

namespace rpg::snapshot {
namespace {

using core::RePagerOptions;
using core::RePagerResult;

/// The full differential query set: every survey query in the bank.
std::vector<std::string> AllQueries() {
  const auto& bank = TestWorkbench().bank();
  std::vector<std::string> queries;
  queries.reserve(bank.size());
  for (size_t i = 0; i < bank.size(); ++i) {
    queries.push_back(bank.Get(i).query);
  }
  return queries;
}

const ServingState& LoadedState() {
  static const ServingState* state =
      ServingState::Load(TestSnapshotPath(/*relabel=*/false))
          .value()
          .release();
  return *state;
}

/// Everything except wall-clock timings and solver work counters must
/// match exactly.
void ExpectSameResult(const RePagerResult& a, const RePagerResult& b,
                      const std::string& query) {
  EXPECT_EQ(a.path.nodes(), b.path.nodes()) << query;
  EXPECT_EQ(a.path.edges(), b.path.edges()) << query;
  EXPECT_EQ(a.ranked, b.ranked) << query;
  EXPECT_EQ(a.initial_seeds, b.initial_seeds) << query;
  EXPECT_EQ(a.terminals, b.terminals) << query;
  EXPECT_EQ(a.subgraph_nodes, b.subgraph_nodes) << query;
  EXPECT_EQ(a.subgraph_edges, b.subgraph_edges) << query;
}

TEST(SnapshotDifferentialTest, SerialQueriesBitIdentical) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = LoadedState();
  ASSERT_EQ(state.graph().num_nodes(), wb.corpus().citations.num_nodes());
  for (const std::string& query : AllQueries()) {
    auto rebuilt = wb.repager().Generate(query);
    auto loaded = state.repager().Generate(query);
    ASSERT_EQ(rebuilt.ok(), loaded.ok()) << query;
    if (!rebuilt.ok()) continue;
    ExpectSameResult(rebuilt.value(), loaded.value(), query);
  }
}

TEST(SnapshotDifferentialTest, BatchedQueriesBitIdentical) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = LoadedState();
  std::vector<core::BatchQuery> batch;
  for (const std::string& query : AllQueries()) batch.push_back({query, {}});

  core::BatchEngineOptions options;
  options.num_threads = 4;
  core::BatchEngine engine(&state.repager(), options);
  core::BatchResult batched = engine.Run(batch);
  ASSERT_EQ(batched.results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto rebuilt = wb.repager().Generate(batch[i].query);
    ASSERT_EQ(rebuilt.ok(), batched.results[i].ok()) << batch[i].query;
    if (!rebuilt.ok()) continue;
    ExpectSameResult(rebuilt.value(), batched.results[i].value(),
                     batch[i].query);
  }
}

/// /api/path JSON from the snapshot-backed service equals the
/// workbench-backed one once the volatile timing fields are zeroed.
TEST(SnapshotDifferentialTest, ServeJsonIdentical) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = LoadedState();

  serve::ServeEngineOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.enable_cache = false;
  serve::ServeEngine rebuilt_engine(&wb.repager(), serve_options);
  serve::ServeEngine loaded_engine(&state.repager(), serve_options);
  ui::RePagerService rebuilt_service(&rebuilt_engine, &wb.repager(),
                                     &wb.titles(), &wb.years());
  ui::RePagerService loaded_service(&loaded_engine, &state.repager(),
                                    &state.titles(), &state.years());

  const std::regex timing("\"(serve_)?seconds\":[-+0-9.eE]+");
  const auto& bank = wb.bank();
  for (size_t i = 0; i < bank.size(); i += 4) {
    const auto& entry = bank.Get(i);
    auto a = rebuilt_service.PathJson(entry.query, 30, entry.year);
    auto b = loaded_service.PathJson(entry.query, 30, entry.year);
    ASSERT_EQ(a.ok(), b.ok()) << entry.query;
    if (!a.ok()) continue;
    EXPECT_EQ(std::regex_replace(a.value(), timing, "\"t\":0"),
              std::regex_replace(b.value(), timing, "\"t\":0"))
        << entry.query;
  }
}

TEST(SnapshotDifferentialTest, LoadedSubstrateFieldsMatch) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = LoadedState();
  EXPECT_EQ(state.titles(), wb.titles());
  EXPECT_EQ(state.years(), wb.years());
  EXPECT_EQ(state.pagerank(), wb.pagerank());
  EXPECT_EQ(state.venue_scores(), wb.venue_scores());
  EXPECT_EQ(state.corpus_seed(), 55u);
  EXPECT_FALSE(state.relabeled());
  EXPECT_TRUE(state.new_to_old().empty());

  // Embeddings: the mmap-backed matrix equals the built one bit for bit.
  auto a = state.matcher().embeddings();
  auto b = wb.matcher().embeddings();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));

  // Graph: full adjacency identity.
  const auto& ga = state.graph();
  const auto& gb = wb.corpus().citations;
  ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (graph::PaperId u = 0; u < ga.num_nodes(); ++u) {
    auto oa = ga.OutNeighbors(u), ob = gb.OutNeighbors(u);
    ASSERT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end())) << u;
    auto ia = ga.InNeighbors(u), ib = gb.InNeighbors(u);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin(), ib.end())) << u;
  }
}

/// Writing a snapshot back out of the loaded state reproduces the
/// original file byte for byte — serialization is a fixed point.
TEST(SnapshotDifferentialTest, RewriteFromLoadedStateIsByteIdentical) {
  const ServingState& state = LoadedState();
  SnapshotInput input;
  input.graph = &state.graph();
  input.titles = &state.titles();
  input.years = &state.years();
  input.pagerank = &state.pagerank();
  input.venue_scores = &state.venue_scores();
  input.engine = &state.engine();
  input.matcher = &state.matcher();
  input.params = state.params();
  input.corpus_seed = state.corpus_seed();

  const auto path =
      (std::filesystem::temp_directory_path() / "rpg_rewrite.snap").string();
  ASSERT_TRUE(WriteSnapshot(input, path).ok());
  std::ifstream is(path, std::ios::binary);
  std::vector<uint8_t> rewritten((std::istreambuf_iterator<char>(is)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(rewritten, TestSnapshotImage(/*relabel=*/false));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Relabeled snapshots: ids are permuted, so identity is asserted through
// the new->old map at the substrate level.

const ServingState& RelabeledState() {
  static const ServingState* state =
      ServingState::Load(TestSnapshotPath(/*relabel=*/true))
          .value()
          .release();
  return *state;
}

TEST(SnapshotRelabelTest, OrderIsAPermutationAndDeterministic) {
  const auto& g = TestWorkbench().corpus().citations;
  auto order = BfsRelabelOrder(g);
  ASSERT_EQ(order.size(), g.num_nodes());
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  for (graph::PaperId p : order) {
    ASSERT_LT(p, g.num_nodes());
    EXPECT_FALSE(seen[p]);
    seen[p] = 1;
  }
  // First root is a highest-in-degree node.
  size_t max_indeg = 0;
  for (graph::PaperId p = 0; p < g.num_nodes(); ++p) {
    max_indeg = std::max(max_indeg, g.InDegree(p));
  }
  EXPECT_EQ(g.InDegree(order.front()), max_indeg);
  EXPECT_EQ(order, BfsRelabelOrder(g));
}

TEST(SnapshotRelabelTest, SubstrateMapsBackExactly) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = RelabeledState();
  ASSERT_TRUE(state.relabeled());
  const auto& map = state.new_to_old();
  ASSERT_EQ(map.size(), wb.titles().size());

  const size_t dim =
      static_cast<size_t>(state.matcher().embedder().dim());
  for (size_t new_id = 0; new_id < map.size(); ++new_id) {
    const graph::PaperId old_id = map[new_id];
    EXPECT_EQ(state.titles()[new_id], wb.titles()[old_id]);
    EXPECT_EQ(state.years()[new_id], wb.years()[old_id]);
    EXPECT_EQ(state.pagerank()[new_id], wb.pagerank()[old_id]);
    EXPECT_EQ(state.venue_scores()[new_id], wb.venue_scores()[old_id]);
    auto row = state.matcher().doc_embedding(static_cast<uint32_t>(new_id));
    auto orig = wb.matcher().embeddings().subspan(old_id * dim, dim);
    ASSERT_TRUE(std::equal(row.begin(), row.end(), orig.begin())) << new_id;
  }
}

TEST(SnapshotRelabelTest, GraphEdgesMapBackExactly) {
  const auto& gb = TestWorkbench().corpus().citations;
  const ServingState& state = RelabeledState();
  const auto& ga = state.graph();
  const auto& map = state.new_to_old();
  ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (graph::PaperId u = 0; u < ga.num_nodes(); ++u) {
    std::vector<graph::PaperId> mapped;
    for (graph::PaperId v : ga.OutNeighbors(u)) mapped.push_back(map[v]);
    std::sort(mapped.begin(), mapped.end());
    auto orig_span = gb.OutNeighbors(map[u]);
    std::vector<graph::PaperId> orig(orig_span.begin(), orig_span.end());
    std::sort(orig.begin(), orig.end());
    ASSERT_EQ(mapped, orig) << u;
  }
}

/// BM25 is permutation-invariant per document, so the FULL result set
/// (top_k = n: no tie-dependent truncation) maps back with exactly equal
/// scores.
TEST(SnapshotRelabelTest, FullBm25ResultSetMapsBackExactly) {
  const eval::Workbench& wb = TestWorkbench();
  const ServingState& state = RelabeledState();
  const auto& map = state.new_to_old();
  const size_t n = map.size();
  for (const std::string& query : AllQueries()) {
    auto rebuilt = wb.google().Search(query, n, INT32_MAX);
    auto loaded = state.engine().Search(query, n, INT32_MAX);
    ASSERT_EQ(rebuilt.size(), loaded.size()) << query;
    // Compare as (old doc id -> score) maps: ordering differs under
    // permutation only where scores tie, which is exactly what we must
    // not depend on.
    auto key = [](const search::SearchResult& r) { return r.doc; };
    std::vector<search::SearchResult> a = rebuilt;
    std::vector<search::SearchResult> b = loaded;
    for (auto& r : b) r.doc = map[r.doc];
    std::sort(a.begin(), a.end(), [&](const auto& x, const auto& y) {
      return key(x) < key(y);
    });
    std::sort(b.begin(), b.end(), [&](const auto& x, const auto& y) {
      return key(x) < key(y);
    });
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc) << query;
      ASSERT_EQ(a[i].score, b[i].score) << query << " doc " << a[i].doc;
    }
  }
}

TEST(SnapshotRelabelTest, QueriesSucceedOnRelabeledState) {
  const ServingState& state = RelabeledState();
  const auto& map = state.new_to_old();
  for (const std::string& query : AllQueries()) {
    auto result = state.repager().Generate(query);
    if (!result.ok()) continue;
    // Every returned id must be a valid new id; map-back must stay in
    // range (the permutation check at load already guarantees this, but
    // exercise the path the UI would take).
    for (graph::PaperId p : result.value().ranked) {
      ASSERT_LT(p, map.size());
      ASSERT_LT(map[p], map.size());
    }
  }
}

}  // namespace
}  // namespace rpg::snapshot
