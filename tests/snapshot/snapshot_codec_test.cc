// Round-trip property tests for the varint/delta adjacency codec and
// fail-closed tests for the section-table reader: random CSR graphs
// survive encode->decode bit-exactly, and every corruption mode —
// truncation at each section boundary, bad magic/version, checksum
// flips, offsets past EOF — yields a typed InvalidArgument, never a
// crash or out-of-bounds read (the suite runs under ASan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "snapshot/byte_io.h"
#include "snapshot/checksum.h"  // Fnv1a64 for re-sealing forged headers
#include "snapshot/codec.h"
#include "snapshot/format.h"
#include "snapshot/serving_state.h"
#include "snapshot/snapshot_reader.h"

#include "snapshot_test_util.h"

namespace rpg::snapshot {
namespace {

using graph::PaperId;

// ------------------------------------------------------------- varints

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             129,
                             16383,
                             16384,
                             (1ull << 21) - 1,
                             1ull << 21,
                             (1ull << 35) + 7,
                             (1ull << 56) - 1,
                             UINT64_MAX - 1,
                             UINT64_MAX};
  for (uint64_t v : values) {
    std::vector<uint8_t> buf;
    ByteWriter w(&buf);
    w.PutVarint(v);
    ByteReader r(buf);
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(VarintTest, RejectsTruncation) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutVarint(UINT64_MAX);
  for (size_t len = 0; len < buf.size(); ++len) {
    ByteReader r(std::span<const uint8_t>(buf.data(), len));
    uint64_t out = 0;
    EXPECT_FALSE(r.GetVarint(&out)) << len;
  }
}

TEST(VarintTest, RejectsOverlongAndOverflow) {
  // 11 continuation bytes: unterminated within the 10-byte budget.
  std::vector<uint8_t> overlong(11, 0x80);
  ByteReader r1(overlong);
  uint64_t out = 0;
  EXPECT_FALSE(r1.GetVarint(&out));
  // Ten bytes whose tenth contributes more than the top bit (2^64+).
  std::vector<uint8_t> overflow(10, 0x80);
  overflow[9] = 0x02;
  ByteReader r2(overflow);
  EXPECT_FALSE(r2.GetVarint(&out));
}

// ----------------------------------------------------- adjacency codec

struct RandomCsr {
  std::vector<uint64_t> offsets;
  std::vector<PaperId> targets;
};

RandomCsr MakeRandomCsr(Rng* rng, size_t max_nodes) {
  RandomCsr csr;
  const size_t n = 1 + rng->NextBounded(max_nodes);
  csr.offsets.push_back(0);
  std::vector<PaperId> span;
  for (size_t u = 0; u < n; ++u) {
    span.clear();
    const size_t degree = rng->NextBounded(8);
    for (size_t k = 0; k < degree; ++k) {
      span.push_back(static_cast<PaperId>(rng->NextBounded(n)));
    }
    std::sort(span.begin(), span.end());
    span.erase(std::unique(span.begin(), span.end()), span.end());
    csr.targets.insert(csr.targets.end(), span.begin(), span.end());
    csr.offsets.push_back(csr.targets.size());
  }
  return csr;
}

TEST(AdjacencyCodecTest, RandomGraphsRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    RandomCsr csr = MakeRandomCsr(&rng, 300);
    std::vector<uint8_t> bytes;
    EncodeAdjacency(csr.offsets, csr.targets, &bytes);
    std::vector<uint64_t> offsets;
    std::vector<PaperId> targets;
    Status status = DecodeAdjacency(bytes, csr.offsets.size() - 1,
                                    csr.targets.size(), &offsets, &targets);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(offsets, csr.offsets);
    EXPECT_EQ(targets, csr.targets);
  }
}

TEST(AdjacencyCodecTest, TruncationAtEveryByteFailsClosed) {
  Rng rng(7);
  RandomCsr csr = MakeRandomCsr(&rng, 40);
  std::vector<uint8_t> bytes;
  EncodeAdjacency(csr.offsets, csr.targets, &bytes);
  const uint64_t n = csr.offsets.size() - 1;
  const uint64_t m = csr.targets.size();
  ASSERT_GT(bytes.size(), 0u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint64_t> offsets;
    std::vector<PaperId> targets;
    Status status = DecodeAdjacency(
        std::span<const uint8_t>(bytes.data(), len), n, m, &offsets, &targets);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << len;
  }
}

TEST(AdjacencyCodecTest, RejectsStructuralLies) {
  Rng rng(9);
  RandomCsr csr = MakeRandomCsr(&rng, 40);
  const uint64_t n = csr.offsets.size() - 1;
  const uint64_t m = csr.targets.size();
  std::vector<uint8_t> bytes;
  EncodeAdjacency(csr.offsets, csr.targets, &bytes);
  std::vector<uint64_t> offsets;
  std::vector<PaperId> targets;
  // Wrong edge totals (both directions).
  EXPECT_EQ(DecodeAdjacency(bytes, n, m + 1, &offsets, &targets).code(),
            StatusCode::kInvalidArgument);
  if (m > 0) {
    EXPECT_EQ(DecodeAdjacency(bytes, n, m - 1, &offsets, &targets).code(),
              StatusCode::kInvalidArgument);
  }
  // Wrong node count: decoded targets point past the claimed range.
  if (n > 1) {
    EXPECT_FALSE(DecodeAdjacency(bytes, 1, m, &offsets, &targets).ok());
  }
  // Trailing garbage after a valid stream.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(DecodeAdjacency(padded, n, m, &offsets, &targets).code(),
            StatusCode::kInvalidArgument);
  // A node count so large the section cannot possibly hold it.
  EXPECT_EQ(DecodeAdjacency(bytes, bytes.size() + 1, m, &offsets, &targets)
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------- reader fail-closed

StatusCode OpenCode(std::vector<uint8_t> bytes) {
  auto reader_or = SnapshotReader::FromBuffer(std::move(bytes));
  return reader_or.ok() ? StatusCode::kOk : reader_or.status().code();
}

TEST(SnapshotReaderTest, ValidImageOpens) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  auto reader_or = SnapshotReader::FromBuffer(image);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  EXPECT_TRUE(reader_or.value()->VerifyAllChecksums().ok());
  EXPECT_GT(reader_or.value()->num_papers(), 0u);
}

TEST(SnapshotReaderTest, TruncationAtEverySectionBoundaryFailsClosed) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));

  // All header prefixes, and one byte past the header.
  std::vector<size_t> cuts;
  for (size_t len = 0; len <= kHeaderSize + 1; ++len) cuts.push_back(len);
  // Every section boundary +/- 1, and the TOC boundary.
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), image.data() + header.toc_offset,
              header.toc_size);
  for (const SectionEntry& e : entries) {
    for (long d = -1; d <= 1; ++d) {
      cuts.push_back(static_cast<size_t>(e.offset + d));
      cuts.push_back(static_cast<size_t>(e.offset + e.size + d));
    }
  }
  cuts.push_back(header.toc_offset);
  cuts.push_back(header.toc_offset + 1);
  cuts.push_back(image.size() - 1);

  for (size_t cut : cuts) {
    if (cut >= image.size()) continue;
    std::vector<uint8_t> truncated(image.begin(), image.begin() + cut);
    EXPECT_EQ(OpenCode(std::move(truncated)), StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
}

TEST(SnapshotReaderTest, BadMagicAndVersionFailClosed) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  {
    auto bad = image;
    bad[0] ^= 0xff;
    EXPECT_EQ(OpenCode(std::move(bad)), StatusCode::kInvalidArgument);
  }
  {
    auto bad = image;
    const uint32_t version = kVersion + 1;
    std::memcpy(bad.data() + offsetof(SnapshotHeader, version), &version,
                sizeof(version));
    // Version is checked before the header checksum so future formats
    // get a clear "unsupported version", not "corrupt".
    auto status_or = SnapshotReader::FromBuffer(std::move(bad));
    ASSERT_FALSE(status_or.ok());
    EXPECT_EQ(status_or.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status_or.status().ToString().find("version"),
              std::string::npos);
  }
}

TEST(SnapshotReaderTest, HeaderAndTocChecksumFlipsFailClosed) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  {
    // Flip a covered header byte (num_papers) without fixing the sum.
    auto bad = image;
    bad[offsetof(SnapshotHeader, num_papers)] ^= 0x01;
    EXPECT_EQ(OpenCode(std::move(bad)), StatusCode::kInvalidArgument);
  }
  {
    // Flip one TOC byte.
    SnapshotHeader header;
    std::memcpy(&header, image.data(), sizeof(header));
    auto bad = image;
    bad[header.toc_offset] ^= 0x01;
    EXPECT_EQ(OpenCode(std::move(bad)), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotReaderTest, SectionChecksumFlipFailsClosedUnlessDisabled) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), image.data() + header.toc_offset,
              header.toc_size);
  // Corrupt the first byte of the graph section.
  for (const SectionEntry& e : entries) {
    if (e.id != static_cast<uint32_t>(SectionId::kGraphOut)) continue;
    auto bad = image;
    bad[e.offset] ^= 0x01;
    EXPECT_EQ(OpenCode(bad), StatusCode::kInvalidArgument);
    // With checksums off the reader admits the bytes; the decoders must
    // still fail closed (ServingState validates structure).
    SnapshotReaderOptions lax;
    lax.verify_checksums = false;
    auto reader_or = SnapshotReader::FromBuffer(std::move(bad), lax);
    EXPECT_TRUE(reader_or.ok());
    return;
  }
  FAIL() << "graph section not found";
}

TEST(SnapshotReaderTest, EmbeddingsCorruptionCaughtOnlyByFullVerify) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), image.data() + header.toc_offset,
              header.toc_size);
  for (const SectionEntry& e : entries) {
    if (e.id != static_cast<uint32_t>(SectionId::kEmbeddings)) continue;
    ASSERT_GT(e.size, 0u);
    auto bad = image;
    bad[e.offset] ^= 0x01;
    // Lazy by design: open succeeds (embeddings are not hashed at load,
    // preserving page-in laziness) ...
    auto reader_or = SnapshotReader::FromBuffer(std::move(bad));
    ASSERT_TRUE(reader_or.ok());
    // ... but the explicit full verification catches it.
    Status status = reader_or.value()->VerifyAllChecksums();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    return;
  }
  FAIL() << "embeddings section not found";
}

TEST(SnapshotReaderTest, TocLiesFailClosed) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));

  // Helper: rewrite header fields and re-seal the header checksum so the
  // lie survives step 1 and must be caught by the later checks.
  auto reseal = [&](SnapshotHeader h, std::vector<uint8_t> bytes) {
    h.header_checksum =
        Fnv1a64(&h, offsetof(SnapshotHeader, header_checksum));
    std::memcpy(bytes.data(), &h, sizeof(h));
    return bytes;
  };

  {
    auto h = header;
    h.toc_offset = image.size() + 8;  // past EOF
    EXPECT_EQ(OpenCode(reseal(h, image)), StatusCode::kInvalidArgument);
  }
  {
    auto h = header;
    h.section_count = kMaxSections + 1;
    EXPECT_EQ(OpenCode(reseal(h, image)), StatusCode::kInvalidArgument);
  }
  {
    auto h = header;
    h.toc_size += sizeof(SectionEntry);  // count/size disagree
    EXPECT_EQ(OpenCode(reseal(h, image)), StatusCode::kInvalidArgument);
  }
  {
    // Section offset past EOF: patch one TOC entry and re-seal the TOC
    // checksum (header stays valid).
    auto bad = image;
    std::vector<SectionEntry> entries(header.section_count);
    std::memcpy(entries.data(), bad.data() + header.toc_offset,
                header.toc_size);
    entries[0].offset = (image.size() + 8) & ~7ull;
    std::memcpy(bad.data() + header.toc_offset, entries.data(),
                header.toc_size);
    auto h = header;
    h.toc_checksum = Fnv1a64(bad.data() + h.toc_offset, h.toc_size);
    EXPECT_EQ(OpenCode(reseal(h, std::move(bad))),
              StatusCode::kInvalidArgument);
  }
  {
    // Misaligned section offset.
    auto bad = image;
    std::vector<SectionEntry> entries(header.section_count);
    std::memcpy(entries.data(), bad.data() + header.toc_offset,
                header.toc_size);
    entries[0].offset += 1;
    std::memcpy(bad.data() + header.toc_offset, entries.data(),
                header.toc_size);
    auto h = header;
    h.toc_checksum = Fnv1a64(bad.data() + h.toc_offset, h.toc_size);
    EXPECT_EQ(OpenCode(reseal(h, std::move(bad))),
              StatusCode::kInvalidArgument);
  }
  {
    // Duplicate section id.
    auto bad = image;
    std::vector<SectionEntry> entries(header.section_count);
    std::memcpy(entries.data(), bad.data() + header.toc_offset,
                header.toc_size);
    ASSERT_GE(entries.size(), 2u);
    entries[1].id = entries[0].id;
    std::memcpy(bad.data() + header.toc_offset, entries.data(),
                header.toc_size);
    auto h = header;
    h.toc_checksum = Fnv1a64(bad.data() + h.toc_offset, h.toc_size);
    EXPECT_EQ(OpenCode(reseal(h, std::move(bad))),
              StatusCode::kInvalidArgument);
  }
}

/// ServingState over a checksum-disabled reader must still reject
/// structurally corrupt sections (the fuzz harness drives this path).
TEST(SnapshotReaderTest, ServingStateFailsClosedOnCorruptSections) {
  auto image = TestSnapshotImage(/*relabel=*/false);
  SnapshotHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), image.data() + header.toc_offset,
              header.toc_size);
  SnapshotReaderOptions lax;
  lax.verify_checksums = false;
  Rng rng(123);
  int rejected = 0, accepted = 0;
  for (const SectionEntry& e : entries) {
    if (e.size == 0) continue;
    auto bad = image;
    bad[e.offset + rng.NextBounded(e.size)] ^= 0x40;
    auto state_or = ServingState::LoadFromBuffer(std::move(bad), lax);
    // Either the corruption was structural (rejected with a typed error)
    // or it landed in payload values (loads fine) — never a crash/OOB.
    if (state_or.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(state_or.status().code(), StatusCode::kInvalidArgument);
      ++rejected;
    }
  }
  EXPECT_GT(rejected + accepted, 0);
}

}  // namespace
}  // namespace rpg::snapshot
