#include "common/logging.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <regex>
#include <string>
#include <thread>
#include <vector>

namespace rpg {
namespace {

TEST(ParseLogLevelTest, AcceptsNamesLettersAndDigits) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("d", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("E", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, RejectsGarbageAndLeavesOutputUntouched) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("4", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_FALSE(ParseLogLevel("info ", &level));
  EXPECT_EQ(level, LogLevel::kWarning);  // untouched through every reject
}

TEST(FormatLogPrefixTest, IsoTimestampThreadIdAndLocation) {
  std::string prefix =
      internal::FormatLogPrefix(LogLevel::kInfo, "repager.cc", 88);
  // "[2026-08-08T12:34:56.789Z tid=4242 I repager.cc:88] "
  std::regex re(
      R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z tid=\d+ I repager\.cc:88\] )");
  EXPECT_TRUE(std::regex_match(prefix, re)) << "prefix: " << prefix;
  EXPECT_NE(internal::FormatLogPrefix(LogLevel::kError, "a.cc", 1)
                .find(" E a.cc:1] "),
            std::string::npos);
  EXPECT_NE(internal::FormatLogPrefix(LogLevel::kWarning, "a.cc", 1)
                .find(" W "),
            std::string::npos);
  EXPECT_NE(internal::FormatLogPrefix(LogLevel::kDebug, "a.cc", 1)
                .find(" D "),
            std::string::npos);
}

/// Redirects stderr into a pipe for the duration of one scope so tests
/// can assert on what the logging layer actually wrote.
class CapturedStderr {
 public:
  CapturedStderr() {
    saved_ = dup(STDERR_FILENO);
    EXPECT_EQ(pipe(fds_), 0);
    dup2(fds_[1], STDERR_FILENO);
    close(fds_[1]);
  }

  /// Restores stderr and returns everything written while captured.
  std::string Finish() {
    dup2(saved_, STDERR_FILENO);
    close(saved_);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = read(fds_[0], buf, sizeof(buf))) > 0) out.append(buf, n);
    close(fds_[0]);
    return out;
  }

 private:
  int saved_ = -1;
  int fds_[2] = {-1, -1};
};

TEST(LogMessageTest, EmitsOnePrefixedLineAndHonorsLevel) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturedStderr capture;
  RPG_LOG(Info) << "hello " << 42;
  RPG_LOG(Debug) << "dropped: below the level";
  std::string out = capture.Finish();
  SetLogLevel(saved);
  std::regex re(
      R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z tid=\d+ I \S+:\d+\] hello 42\n)");
  EXPECT_TRUE(std::regex_match(out, re)) << "captured: " << out;
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(LogMessageTest, ConcurrentLinesNeverShear) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturedStderr capture;
  constexpr int kThreads = 8, kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        RPG_LOG(Info) << "thread=" << t << " line=" << i << " payload="
                      << std::string(64, 'x');
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::string out = capture.Finish();
  SetLogLevel(saved);
  // Every line must be a complete, well-formed log line: one prefix, one
  // intact payload. A sheared write would produce a line failing the
  // pattern (interleaved fragments).
  std::regex line_re(
      R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z tid=\d+ I \S+:\d+\] thread=\d+ line=\d+ payload=x{64})");
  size_t lines = 0, pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated tail line";
    std::string line = out.substr(pos, eol - pos);
    EXPECT_TRUE(std::regex_match(line, line_re)) << "sheared line: " << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, static_cast<size_t>(kThreads * kLines));
}

TEST(WriteLogLineTest, AppendsNewlineAndWritesVerbatim) {
  CapturedStderr capture;
  internal::WriteLogLine("{\"slow_query\":{\"total_ms\":300}}");
  std::string out = capture.Finish();
  EXPECT_EQ(out, "{\"slow_query\":{\"total_ms\":300}}\n");
}

}  // namespace
}  // namespace rpg
