#include <gtest/gtest.h>

#include <sstream>

#include "common/csv_writer.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/table_printer.h"

namespace rpg {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketsValuesCorrectly) {
  Histogram h({0, 5, 10, 100});
  h.Add(0);    // bucket 0
  h.Add(4.9);  // bucket 0
  h.Add(5);    // bucket 1
  h.Add(50);   // bucket 2
  h.Add(100);  // overflow (right edge exclusive)
  h.Add(-1);   // underflow
  EXPECT_EQ(h.num_buckets(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, AddCountAndMean) {
  Histogram h({0, 10});
  h.AddCount(2.0, 3);
  h.Add(8.0);
  EXPECT_EQ(h.bucket_count(0), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h({0, 1, 2, 3});
  for (int i = 0; i < 30; ++i) h.Add(i % 3);
  double total = 0.0;
  for (size_t i = 0; i < h.num_buckets(); ++i) total += h.BucketFraction(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, LabelsRenderIntegralEdges) {
  Histogram h({0, 5, 10.5});
  EXPECT_EQ(h.BucketLabel(0), "0-5");
  EXPECT_EQ(h.BucketLabel(1), "5-10.50");
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h({0, 1});
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketFraction(0), 0.0);
}

// ------------------------------------------------------------ TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::string s = t.ToString();
  // Three header cells + separator + one padded row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(TablePrinterTest, DoubleRowFormatsDecimals) {
  TablePrinter t({"m", "k1", "k2"});
  t.AddRow("x", {0.12345, 0.5}, 4);
  EXPECT_NE(t.ToString().find("0.1235"), std::string::npos);
  EXPECT_NE(t.ToString().find("0.5000"), std::string::npos);
}

// -------------------------------------------------------------- CsvWriter

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::EscapeField("plain"), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::EscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WriteRowRoundTripsThroughParse) {
  std::ostringstream os;
  CsvWriter w(&os);
  std::vector<std::string> row = {"a", "b,c", "d\"e", ""};
  w.WriteRow(row);
  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // strip trailing newline
  auto parsed = ParseCsvLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), row);
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsvLine("\"open").status().IsInvalidArgument());
}

TEST(CsvTest, ParseEmptyLineYieldsOneEmptyField) {
  auto parsed = ParseCsvLine("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), std::vector<std::string>{""});
}

// -------------------------------------------------------------- JsonWriter

TEST(JsonTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("x");
  w.Key("i").Int(-3);
  w.Key("u").UInt(7);
  w.Key("d").Double(1.5);
  w.Key("b").Bool(true);
  w.Key("n").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"x\",\"i\":-3,\"u\":7,\"d\":1.5,\"b\":true,\"n\":null}");
}

TEST(JsonTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list").BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("k").String("v");
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"list\":[1,{\"k\":\"v\"}]}");
}

TEST(JsonTest, TopLevelArrayCommas) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.Int(3);
  w.EndArray();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

}  // namespace
}  // namespace rpg
