// Differential suite for the d-ary min-heap that replaced
// std::priority_queue in the Steiner solvers (ISSUE 9). The load-bearing
// claim is stronger than "it's a correct heap": under a TOTAL order,
// the exact pop sequence must match the binary heap's for any
// interleaving of pushes and pops, because the solver goldens
// (tests/steiner, tests/core) pin dist/parent arrays produced through
// lazy-deletion Dijkstra. The tests here check that claim directly — a
// randomized interleaved oracle, stale-entry lazy-deletion semantics,
// and a 100+-graph Dijkstra differential between a binary-heap and a
// 4-ary-heap implementation of the same relaxation loop.

#include "common/dary_heap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace rpg {
namespace {

using Entry = std::pair<double, uint32_t>;
using BinaryHeap =
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>;

TEST(DaryHeapTest, InterleavedPushPopMatchesPriorityQueueOracle) {
  // Random push/pop interleavings with duplicate priorities: after every
  // operation both heaps hold the same multiset, so every pop must
  // return the same (priority, id) pair.
  Rng rng(424242);
  for (int round = 0; round < 30; ++round) {
    DaryHeap<Entry> ours;
    BinaryHeap oracle;
    for (int op = 0; op < 2000; ++op) {
      if (oracle.empty() || rng.NextBounded(100) < 60) {
        // Coarse priority grid (16 buckets) to force ties; the node id
        // breaks them, keeping the order total.
        Entry e{static_cast<double>(rng.NextBounded(16)) * 0.25,
                static_cast<uint32_t>(rng.NextBounded(64))};
        ours.push(e);
        oracle.push(e);
      } else {
        ASSERT_EQ(ours.top(), oracle.top()) << "round " << round;
        ours.pop();
        oracle.pop();
      }
      ASSERT_EQ(ours.size(), oracle.size());
    }
    while (!oracle.empty()) {
      ASSERT_EQ(ours.top(), oracle.top());
      ours.pop();
      oracle.pop();
    }
    EXPECT_TRUE(ours.empty());
  }
}

TEST(DaryHeapTest, DrainsInSortedOrderAcrossArities) {
  // Heap property sanity for several arities (the solvers use 4).
  Rng rng(7);
  std::vector<Entry> values;
  for (int i = 0; i < 500; ++i) {
    values.emplace_back(rng.UniformDouble(), static_cast<uint32_t>(i));
  }
  auto drain_check = [&](auto& heap) {
    for (const Entry& e : values) heap.push(e);
    Entry prev{-1.0, 0};
    while (!heap.empty()) {
      EXPECT_LE(prev, heap.top());
      prev = heap.top();
      heap.pop();
    }
  };
  DaryHeap<Entry, 2> d2;
  DaryHeap<Entry, 4> d4;
  DaryHeap<Entry, 8> d8;
  drain_check(d2);
  drain_check(d4);
  drain_check(d8);
}

TEST(DaryHeapTest, ClearKeepsWorkingAndEmpties) {
  DaryHeap<Entry> h;
  for (uint32_t i = 0; i < 100; ++i) h.emplace(100.0 - i, i);
  EXPECT_EQ(h.size(), 100u);
  h.clear();
  EXPECT_TRUE(h.empty());
  h.emplace(2.0, 1);
  h.emplace(1.0, 2);
  EXPECT_EQ(h.top(), (Entry{1.0, 2}));
}

/// The exact relaxation loop from steiner/dijkstra.cc, parameterized on
/// the heap type, over a throwaway adjacency list. Returns (dist,
/// parent, pop count after stale filtering).
struct MiniDijkstraResult {
  std::vector<double> dist;
  std::vector<uint32_t> parent;
  uint64_t settled = 0;
};

using AdjList = std::vector<std::vector<std::pair<uint32_t, double>>>;

template <typename Heap>
MiniDijkstraResult MiniDijkstra(const AdjList& adj, uint32_t source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  MiniDijkstraResult r;
  r.dist.assign(adj.size(), kInf);
  r.parent.assign(adj.size(), UINT32_MAX);
  Heap pq;
  r.dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;  // stale entry (lazy deletion)
    ++r.settled;
    for (const auto& [v, cost] : adj[u]) {
      double nd = d + cost;
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        r.parent[v] = u;
        pq.push({nd, v});
      }
    }
  }
  return r;
}

TEST(DaryHeapTest, StaleEntryLazyDeletionSemantics) {
  // Lazy deletion relies on one property: when a node's distance has
  // improved since an entry was pushed, the improved entry pops FIRST
  // (it is smaller under the total order), so the stale one is always
  // filtered by `d > dist[u]`. Construct that situation explicitly.
  DaryHeap<Entry> h;
  std::vector<double> dist(3, std::numeric_limits<double>::infinity());
  dist[1] = 10.0;
  h.push({10.0, 1});
  dist[1] = 4.0;  // improvement pushes a second, better entry
  h.push({4.0, 1});
  dist[2] = 7.0;
  h.push({7.0, 2});
  // Fresh entry for node 1 first, then node 2, then the stale entry.
  EXPECT_EQ(h.top(), (Entry{4.0, 1}));
  EXPECT_FALSE(h.top().first > dist[h.top().second]);  // fresh: kept
  h.pop();
  EXPECT_EQ(h.top(), (Entry{7.0, 2}));
  h.pop();
  EXPECT_EQ(h.top(), (Entry{10.0, 1}));
  EXPECT_TRUE(h.top().first > dist[h.top().second]);  // stale: skipped
  h.pop();
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeapTest, DijkstraDifferentialBinaryVsDaryOn100RandomGraphs) {
  // dist AND parent trees must agree exactly — not approximately —
  // between the binary-heap and 4-ary-heap runs of the identical loop,
  // across 120 random graphs (mixed density, duplicate edge costs to
  // exercise ties through the total (dist, node) order).
  Rng rng(987);
  for (int trial = 0; trial < 120; ++trial) {
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextBounded(80));
    AdjList adj(n);
    const uint32_t extra = static_cast<uint32_t>(rng.NextBounded(4 * n));
    auto add_edge = [&](uint32_t a, uint32_t b, double c) {
      adj[a].emplace_back(b, c);
      adj[b].emplace_back(a, c);
    };
    for (uint32_t v = 1; v < n; ++v) {
      // Random spine keeps most of the graph reachable; quantized costs
      // force ties.
      add_edge(static_cast<uint32_t>(rng.NextBounded(v)), v,
               static_cast<double>(1 + rng.NextBounded(8)));
    }
    for (uint32_t e = 0; e < extra; ++e) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(n));
      if (a != b) add_edge(a, b, static_cast<double>(1 + rng.NextBounded(8)));
    }
    const uint32_t source = static_cast<uint32_t>(rng.NextBounded(n));
    auto binary = MiniDijkstra<BinaryHeap>(adj, source);
    auto dary = MiniDijkstra<DaryHeap<Entry>>(adj, source);
    ASSERT_EQ(binary.dist, dary.dist) << "trial " << trial;
    ASSERT_EQ(binary.parent, dary.parent) << "trial " << trial;
    ASSERT_EQ(binary.settled, dary.settled) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rpg
