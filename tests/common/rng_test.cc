#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace rpg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedStillMixes) {
  Rng r(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(r.Next());
  EXPECT_EQ(values.size(), 50u);
}

class RngBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundsTest, NextBoundedStaysInRange) {
  Rng r(GetParam());
  for (uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.NextBounded(n), n);
    }
  }
}

TEST_P(RngBoundsTest, UniformIntInclusiveRange) {
  Rng r(GetParam());
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST_P(RngBoundsTest, UniformDoubleInHalfOpenUnit) {
  Rng r(GetParam());
  for (int i = 0; i < 1000; ++i) {
    double v = r.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsTest,
                         ::testing::Values(1, 7, 42, 1234567, 0));

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.NextBounded(1), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng r(5);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += r.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = r.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ZipfStaysInRangeAndSkewsLow) {
  Rng r(13);
  uint64_t below_ten = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = r.Zipf(1000, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 10) ++below_ten;
  }
  // A Zipf(1.2) over 1000 puts roughly 43% of its mass on the first 10
  // ranks; the inverse-CDF approximation should land in that ballpark.
  EXPECT_GT(below_ten, static_cast<uint64_t>(n * 0.35));
}

TEST(RngTest, ZipfDegenerateN) {
  Rng r(13);
  EXPECT_EQ(r.Zipf(1, 1.5), 1u);
  EXPECT_EQ(r.Zipf(0, 1.5), 1u);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng r(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Geometric(0.5));
  // Mean of failures-before-success at p = 0.5 is 1.
  EXPECT_NEAR(sum / n, 1.0, 0.1);
}

TEST(RngTest, PoissonSmallAndLargeMeans) {
  Rng r(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.2);
  sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.5);
  EXPECT_EQ(r.Poisson(0.0), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng r(23);
  for (uint64_t n : {uint64_t{10}, uint64_t{100}, uint64_t{5000}}) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{5}, n / 2, n}) {
      auto sample = r.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleMoreThanPopulationClamps) {
  Rng r(29);
  auto sample = r.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng r(31);
  std::vector<int> empty;
  r.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  r.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng r(37);
  std::vector<double> weights = {0.0, 10.0, 0.0, 1.0};
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[r.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 10.0 / 11.0, 0.02);
}

TEST(RngTest, WeightedIndexDegenerateInputs) {
  Rng r(41);
  EXPECT_EQ(r.WeightedIndex({0.0, 0.0}), 0u);
  EXPECT_EQ(r.WeightedIndex({5.0}), 0u);
  // Negative weights are treated as zero.
  EXPECT_EQ(r.WeightedIndex({-1.0, 3.0}), 1u);
}

}  // namespace
}  // namespace rpg
