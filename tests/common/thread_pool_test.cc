#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace rpg {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, FuturesCarryReturnValues) {
  ThreadPool pool(2);
  auto a = pool.Submit([] { return 6 * 7; });
  auto b = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "done");
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  auto after = pool.Submit([] { return 2; });
  EXPECT_EQ(after.get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Shutdown();  // must finish everything already submitted
  EXPECT_EQ(count.load(), 50);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, DestructorJoinsAndCompletesWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // ~ThreadPool == Shutdown
  EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  auto outer = pool.Submit([&] {
    ++count;
    return pool.Submit([&count] { ++count; });
  });
  outer.get().get();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, WorkerMaySubmitWhileShutdownDrains) {
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    pool.Submit([&] {
      // Hold the only worker until the destructor below has started
      // draining, then submit from inside the pool: must be accepted
      // and executed, not RPG_CHECK-aborted or dropped.
      while (!release.load()) std::this_thread::yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pool.Submit([&count] { ++count; });
    });
    release = true;
  }  // ~ThreadPool: Shutdown begins while the task is still running
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace rpg
