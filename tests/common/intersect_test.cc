// Property/differential suite for the sorted-set intersection kernels
// (ISSUE 9): every kernel — merge, gallop, blocked, adaptive, bitmap —
// is held to a std::set_intersection oracle across size ratios from 1:1
// to 1:10^4, plus exhaustive boundary cases. The kernels' shared
// contract is that each returns EXACTLY min(|a ∩ b|, cap), so they are
// interchangeable inside WeightModel::Con's two-phase capped count; a
// kernel that treats cap as a scan cutoff instead of a semantic clamp
// fails the cap-equivalence sweeps here before it can corrupt Eq. (2).

#include "common/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rpg::intersect {
namespace {

using List = std::vector<uint32_t>;

/// Ground truth: full std::set_intersection size, clamped afterwards.
size_t Oracle(const List& a, const List& b, size_t cap) {
  List out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return std::min(out.size(), cap);
}

/// Sorted duplicate-free list of `len` ids drawn from [0, universe).
List RandomSortedList(Rng* rng, size_t len, uint32_t universe) {
  List v;
  v.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    v.push_back(static_cast<uint32_t>(rng->NextBounded(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Runs every kernel (both argument orders where the kernel allows it)
/// against the oracle for one (a, b, cap) instance.
void ExpectAllKernelsMatchOracle(const List& a, const List& b, size_t cap) {
  const size_t want = Oracle(a, b, cap);
  EXPECT_EQ(CountCommonMerge(a, b, cap), want) << "merge";
  EXPECT_EQ(CountCommonMerge(b, a, cap), want) << "merge swapped";
  EXPECT_EQ(CountCommonBlocked(a, b, cap), want) << "blocked";
  EXPECT_EQ(CountCommonBlocked(b, a, cap), want) << "blocked swapped";
  EXPECT_EQ(CountCommon(a, b, cap), want) << "adaptive";
  EXPECT_EQ(CountCommon(b, a, cap), want) << "adaptive swapped";
  // Gallop is documented for (small, large) but must be correct for any
  // ordering; exercise both.
  EXPECT_EQ(CountCommonGallop(a, b, cap), want) << "gallop";
  EXPECT_EQ(CountCommonGallop(b, a, cap), want) << "gallop swapped";
  // Bitmap path: stamp a, probe b — and the reverse.
  uint32_t universe = 1;
  if (!a.empty()) universe = std::max(universe, a.back() + 1);
  if (!b.empty()) universe = std::max(universe, b.back() + 1);
  NeighborBitmap bm;
  bm.EnsureUniverse(universe);
  bm.Stamp(a);
  EXPECT_EQ(bm.CountCommon(b, cap), want) << "bitmap stamp-a";
  bm.Unstamp(a);
  bm.Stamp(b);
  EXPECT_EQ(bm.CountCommon(a, cap), want) << "bitmap stamp-b";
  bm.Unstamp(b);
}

TEST(IntersectTest, ExhaustiveBoundaryCases) {
  const List empty;
  const List one = {5};
  const List other = {6};
  const List small = {1, 3, 5, 7, 9};
  const List disjoint = {0, 2, 4, 6, 8};
  const List identical = small;
  const List superset = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (size_t cap : {size_t{0}, size_t{1}, size_t{2}, size_t{100}}) {
    ExpectAllKernelsMatchOracle(empty, empty, cap);
    ExpectAllKernelsMatchOracle(empty, small, cap);
    ExpectAllKernelsMatchOracle(one, empty, cap);
    ExpectAllKernelsMatchOracle(one, one, cap);
    ExpectAllKernelsMatchOracle(one, other, cap);
    ExpectAllKernelsMatchOracle(small, disjoint, cap);
    ExpectAllKernelsMatchOracle(small, identical, cap);
    ExpectAllKernelsMatchOracle(small, superset, cap);
  }
}

TEST(IntersectTest, LengthsAroundBlockSizeMultiples) {
  // The blocked kernel re-checks the cap only at kBlockSize boundaries;
  // hit every length around the first few multiples (and the galloping
  // kernel's power-of-two probe offsets) from both sides.
  Rng rng(101);
  for (size_t base : {kBlockSize, 2 * kBlockSize, 3 * kBlockSize}) {
    for (size_t delta : {size_t{0}, size_t{1}, size_t{2}}) {
      for (size_t len : {base - delta, base + delta}) {
        List a = RandomSortedList(&rng, len, 4 * kBlockSize);
        List b = RandomSortedList(&rng, len / 2 + 1, 4 * kBlockSize);
        for (size_t cap :
             {size_t{0}, size_t{1}, size_t{7}, len, size_t{100000}}) {
          ExpectAllKernelsMatchOracle(a, b, cap);
        }
      }
    }
  }
}

TEST(IntersectTest, RandomSweepAcrossSizeRatios) {
  // |a| fixed small-ish, |b| swept from 1:1 to 1:10^4; overlap density
  // varied through the universe size. 10^4 covers the worst real skew
  // (a low-degree paper against a survey citing thousands).
  Rng rng(20240809);
  for (size_t ratio : {size_t{1}, size_t{3}, size_t{16}, size_t{100},
                       size_t{1000}, size_t{10000}}) {
    for (uint32_t universe : {64u, 2048u, 1u << 18}) {
      for (int trial = 0; trial < 6; ++trial) {
        size_t small_len = 1 + rng.NextBounded(25);
        size_t large_len = small_len * ratio;
        List a = RandomSortedList(&rng, small_len, universe);
        List b = RandomSortedList(&rng, large_len, universe);
        for (size_t cap : {size_t{1}, size_t{7}, size_t{1u << 30}}) {
          ExpectAllKernelsMatchOracle(a, b, cap);
        }
      }
    }
  }
}

TEST(IntersectTest, CapEquivalenceAgainstUncapped) {
  // For every cap c, every kernel must return min(uncapped, c) — the
  // early exit may change how much input is read, never the value.
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    List a = RandomSortedList(&rng, 1 + rng.NextBounded(201), 512);
    List b = RandomSortedList(&rng, 1 + rng.NextBounded(201), 512);
    const size_t full = Oracle(a, b, a.size() + b.size());
    for (size_t cap = 0; cap <= full + 2; ++cap) {
      ExpectAllKernelsMatchOracle(a, b, cap);
      EXPECT_EQ(CountCommon(a, b, cap), std::min(full, cap));
    }
  }
}

TEST(IntersectTest, BitmapStampUnstampRoundTrip) {
  // Unstamp(list) must restore the all-zero bitmap exactly, including
  // when the next stamped list shares words with the previous one —
  // that is what lets ConScratch switch sources in O(degree).
  Rng rng(55);
  NeighborBitmap bm;
  bm.EnsureUniverse(1024);
  for (int round = 0; round < 50; ++round) {
    List next = RandomSortedList(&rng, 1 + rng.NextBounded(101), 1024);
    bm.Stamp(next);
    for (uint32_t v : next) EXPECT_TRUE(bm.Test(v));
    List probe = RandomSortedList(&rng, 64, 1024);
    EXPECT_EQ(bm.CountCommon(probe, 1000), Oracle(next, probe, 1000));
    bm.Unstamp(next);
  }
  for (uint32_t v = 0; v < 1024; ++v) {
    EXPECT_FALSE(bm.Test(v)) << "bit " << v << " leaked through unstamp";
  }
}

TEST(IntersectTest, BitmapUniverseGrowthKeepsStampedBits) {
  NeighborBitmap bm;
  bm.EnsureUniverse(10);
  List small = {1, 5, 9};
  bm.Stamp(small);
  bm.EnsureUniverse(100000);  // grow with live bits: must not drop them
  List probe = {1, 5, 9, 50000, 99999};
  EXPECT_EQ(bm.CountCommon(probe, 100), 3u);
  bm.Unstamp(small);
  EXPECT_EQ(bm.CountCommon(probe, 100), 0u);
}

TEST(IntersectTest, AdaptiveDispatchCoversBothRegimes) {
  // Not a dispatch-internals test — just pins that the adaptive entry
  // point stays correct exactly at the documented ratio boundary.
  Rng rng(13);
  List a = RandomSortedList(&rng, 32, 1u << 16);
  for (size_t factor : {kGallopRatio - 1, kGallopRatio, kGallopRatio + 1}) {
    List b = RandomSortedList(&rng, a.size() * factor, 1u << 16);
    for (size_t cap : {size_t{3}, size_t{1u << 20}}) {
      EXPECT_EQ(CountCommon(a, b, cap), Oracle(a, b, cap));
      EXPECT_EQ(CountCommon(b, a, cap), Oracle(a, b, cap));
    }
  }
}

}  // namespace
}  // namespace rpg::intersect
