#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace rpg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("missing"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("far"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::AlreadyExists("dup"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("early"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::IoError("disk"), StatusCode::kIoError, "IoError"},
      {Status::Internal("bug"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("todo"), StatusCode::kUnimplemented,
       "Unimplemented"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("the thing");
  EXPECT_EQ(s.ToString(), "NotFound: the thing");
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  RPG_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  RPG_ASSIGN_OR_RETURN(int half, HalveEven(x));
  RPG_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(QuarterViaMacro(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterViaMacro(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace rpg
