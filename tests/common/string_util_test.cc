#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rpg {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123 Case"), "mixed 123 case");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, AllCases) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("reading path", "read"));
  EXPECT_FALSE(StartsWith("read", "reading"));
  EXPECT_TRUE(EndsWith("survey.pdf", ".pdf"));
  EXPECT_FALSE(EndsWith(".pdf", "survey.pdf"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ContainsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(ContainsIgnoreCase("A Survey on Hate Speech", "survey"));
  EXPECT_TRUE(ContainsIgnoreCase("ABC", "abc"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatDoubleTest, Decimals) {
  EXPECT_EQ(FormatDouble(0.23434, 4), "0.2343");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(9321), "9,321");
  EXPECT_EQ(FormatWithCommas(41194), "41,194");
  EXPECT_EQ(FormatWithCommas(6000000), "6,000,000");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace rpg
