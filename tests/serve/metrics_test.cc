#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rpg::serve {
namespace {

TEST(HistogramQuantileTest, UniformMassInterpolates) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  for (int v = 0; v < 10; ++v) h.Add(static_cast<double>(v));       // 10 in b0
  for (int v = 10; v < 20; ++v) h.Add(static_cast<double>(v));      // 10 in b1
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramQuantileTest, EmptyAndClampedTails) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Add(0.5);                       // underflow
  h.Add(5.0);                       // overflow
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(MetricsRegistryTest, CountersAreStableAndCumulative) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a");
  a->Increment();
  a->Increment(4);
  EXPECT_EQ(registry.GetCounter("a"), a);  // same instrument
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(registry.GetCounter("b")->value(), 0u);
}

TEST(MetricsRegistryTest, GaugesGoUpAndDown) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("open_connections");
  g->Add(3);
  g->Add(-1);
  EXPECT_EQ(registry.GetGauge("open_connections"), g);  // same instrument
  EXPECT_EQ(g->value(), 2);
  g->Set(-5);  // gauges are signed
  EXPECT_EQ(g->value(), -5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"gauges\":{\"open_connections\":-5}"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramObserveAndSnapshot) {
  MetricsRegistry registry;
  MetricHistogram* h = registry.GetHistogram("lat", {0.0, 1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  Histogram snapshot = h->Snapshot();
  EXPECT_EQ(snapshot.total(), 2u);
  EXPECT_EQ(snapshot.bucket_count(0), 1u);
  EXPECT_EQ(snapshot.bucket_count(1), 1u);
}

TEST(MetricsRegistryTest, JsonContainsAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetHistogram("e2e_ms", LatencyBucketEdgesMs())->Observe(2.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"requests_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"le\":"), std::string::npos);  // numeric bucket edge
}

TEST(MetricsRegistryTest, ConcurrentIncrementsDontLose) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  MetricHistogram* h = registry.GetHistogram("h", {0.0, 100.0});
  constexpr int kThreads = 8, kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        c->Increment();
        h->Observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(h->Snapshot().total(), static_cast<uint64_t>(kThreads) * kOps);
}

TEST(LatencyBucketsTest, EdgesCoverMicrosecondsToMinutes) {
  std::vector<double> edges = LatencyBucketEdgesMs();
  EXPECT_LE(edges.front(), 0.01);
  EXPECT_GE(edges.back(), 100000.0 - 1.0);
  for (size_t i = 1; i < edges.size(); ++i) EXPECT_GT(edges[i], edges[i - 1]);
}

// Regression pins for the Quantile edge cases (docs/observability.md):
// an empty histogram must answer 0 for every q (not NaN or an edge), and
// a single observation must come back exactly (no within-bucket
// interpolation pretending precision the data doesn't have).
TEST(HistogramQuantileTest, EmptyHistogramReturnsZeroForEveryQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, SingleObservationReturnsTheObservation) {
  Histogram h({0.0, 10.0, 100.0});
  h.Add(3.7);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.7);
  // Multiple observations at the same value must NOT take the exact
  // path (q=1 with 3 samples interpolates inside the bucket as before).
  Histogram multi({0.0, 10.0, 100.0});
  multi.AddCount(3.7, 3);
  EXPECT_DOUBLE_EQ(multi.Quantile(1.0), 10.0);
}

TEST(MetricsRegistryTest, HistogramNamesAreJsonEscaped) {
  MetricsRegistry registry;
  // A hostile / accidental name with JSON-significant characters must
  // come out escaped, or /api/stats stops parsing.
  registry.GetHistogram("odd\"name\\with\ncontrol", {0.0, 1.0})->Observe(0.5);
  registry.GetCounter("quote\"counter")->Increment();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("odd\\\"name\\\\with\\ncontrol"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"counter"), std::string::npos);
  EXPECT_EQ(json.find("odd\"name"), std::string::npos);  // no raw quote
}

TEST(MetricsRegistryTest, ToPrometheusRendersAllInstrumentFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetGauge("inflight")->Set(-2);
  MetricHistogram* h = registry.GetHistogram("e2e_ms", {0.0, 1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);  // overflow
  std::string text = registry.ToPrometheus("rpg");
  EXPECT_NE(text.find("# TYPE rpg_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpg_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rpg_inflight gauge\n"), std::string::npos);
  EXPECT_NE(text.find("rpg_inflight -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rpg_e2e_ms histogram\n"), std::string::npos);
  // Cumulative buckets: le="1" holds everything <= 1 (the 0.5 sample),
  // le="10" adds the 5.0 sample, +Inf equals _count.
  EXPECT_NE(text.find("rpg_e2e_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("rpg_e2e_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("rpg_e2e_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpg_e2e_ms_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("rpg_e2e_ms_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ToPrometheusSanitizesHostileNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird name-with.dots")->Increment();
  std::string text = registry.ToPrometheus("rpg");
  EXPECT_NE(text.find("rpg_weird_name_with_dots 1\n"), std::string::npos);
}

}  // namespace
}  // namespace rpg::serve
