#include "serve/micro_batcher.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "serve_test_util.h"

namespace rpg::serve {
namespace {

core::BatchQuery MakeQuery(size_t bank_index) {
  const auto& entry = SharedWorkbench().bank().Get(bank_index);
  core::BatchQuery q;
  q.query = entry.query;
  q.options.year_cutoff = entry.year;
  return q;
}

TEST(MicroBatcherTest, SingleRequestFlushesOnDeadline) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 2});
  MicroBatcherOptions options;
  options.max_batch_size = 64;  // never reached
  options.flush_window = std::chrono::microseconds(2000);
  MicroBatcher batcher(&engine, options);
  auto future = batcher.Submit(MakeQuery(0));
  Result<core::RePagerResult> result = future.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->ranked.empty());
  MicroBatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.flushes_on_deadline, 1u);
  EXPECT_EQ(stats.flushes_on_size, 0u);
}

TEST(MicroBatcherTest, FlushOnSizeGroupsConcurrentArrivals) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 2});
  MicroBatcherOptions options;
  options.max_batch_size = 3;
  // A long window, so only the size trigger can flush the full batch.
  options.flush_window = std::chrono::microseconds(30'000'000);
  MicroBatcher batcher(&engine, options);
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(batcher.Submit(MakeQuery(0)));
  for (auto& f : futures) {
    Result<core::RePagerResult> r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  MicroBatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.flushes_on_size, 1u);
  EXPECT_EQ(stats.max_batch_size_seen, 3u);
}

TEST(MicroBatcherTest, ResultsMatchSerialGenerateBitForBit) {
  const eval::Workbench& wb = SharedWorkbench();
  core::BatchEngine engine(&wb.repager(), {.num_threads = 2});
  MicroBatcher batcher(&engine, {});
  std::vector<core::BatchQuery> queries;
  for (size_t i = 0; i < 4; ++i) queries.push_back(MakeQuery(i));
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (const auto& q : queries) futures.push_back(batcher.Submit(q));
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<core::RePagerResult> batched = futures[i].get();
    auto serial = wb.repager().Generate(queries[i].query, queries[i].options);
    ASSERT_EQ(batched.ok(), serial.ok());
    if (!batched.ok()) continue;
    EXPECT_EQ(batched->ranked, serial->ranked);
    EXPECT_EQ(batched->path.nodes(), serial->path.nodes());
    EXPECT_EQ(batched->path.edges(), serial->path.edges());
    EXPECT_EQ(batched->initial_seeds, serial->initial_seeds);
    EXPECT_EQ(batched->terminals, serial->terminals);
  }
}

TEST(MicroBatcherTest, PerQueryErrorsLandInTheirSlot) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 2});
  MicroBatcher batcher(&engine, {});
  auto bad = batcher.Submit({.query = "zzzz qqqq wwww", .options = {}});
  auto good = batcher.Submit(MakeQuery(0));
  EXPECT_FALSE(bad.get().ok());
  EXPECT_TRUE(good.get().ok());
}

TEST(MicroBatcherTest, QueueBoundShedsWithUnavailable) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 1});
  MicroBatcherOptions options;
  options.max_batch_size = 1;  // one solve at a time -> backlog builds
  options.max_queue_depth = 1;
  MicroBatcher batcher(&engine, options);
  // A burst far past the bound: the dispatcher absorbs at most one
  // executing + one queued; the rest must shed inline with Unavailable,
  // not queue without limit.
  constexpr int kBurst = 6;
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < kBurst; ++i) futures.push_back(batcher.Submit(MakeQuery(0)));
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    Result<core::RePagerResult> r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1);    // at least the first submission computes
  EXPECT_GE(shed, 1);  // and the burst's tail was shed
  MicroBatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.rejected_overload, static_cast<uint64_t>(shed));
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(ok));
  EXPECT_EQ(stats.queue_depth, 0u);  // everything drained or shed
}

TEST(MicroBatcherTest, UnboundedQueueNeverSheds) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 1});
  MicroBatcherOptions options;
  options.max_batch_size = 1;
  options.max_queue_depth = 0;  // explicit opt-out
  MicroBatcher batcher(&engine, options);
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(batcher.Submit(MakeQuery(0)));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(batcher.Stats().rejected_overload, 0u);
}

TEST(MicroBatcherTest, QueueDeadlineExpiresStaleEntries) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 1});
  MicroBatcherOptions options;
  options.max_batch_size = 1;
  options.queue_deadline = std::chrono::milliseconds(50);
  // The on_batch tap runs on the dispatcher thread: sleeping in it
  // wedges dispatch long enough for everything still queued to age past
  // the deadline — deterministic, no timing races against solve speed.
  options.on_batch = [](size_t, double) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  };
  MicroBatcher batcher(&engine, options);
  constexpr int kBurst = 4;
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(batcher.Submit(MakeQuery(0)));
  }
  int ok = 0, expired = 0;
  for (auto& f : futures) {
    Result<core::RePagerResult> r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
      // The expiry carries a measured Retry-After hint in its clamp.
      EXPECT_GE(r.status().retry_after_seconds(), 1);
      EXPECT_LE(r.status().retry_after_seconds(), 30);
      ++expired;
    }
  }
  // The first batch (picked up before the wedge) computes; everything
  // that sat out the 250 ms sleep is past the 50 ms deadline.
  EXPECT_GE(ok, 1);
  EXPECT_GE(expired, 1);
  EXPECT_EQ(ok + expired, kBurst);
  MicroBatcherStats stats = batcher.Stats();
  EXPECT_EQ(stats.deadline_expired, static_cast<uint64_t>(expired));
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(MicroBatcherTest, QueueDeadlineDisabledByDefault) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 1});
  MicroBatcherOptions options;
  options.max_batch_size = 1;
  // Same wedge as above, but with queue_deadline at its 0 default every
  // entry waits out the stall and still computes.
  options.on_batch = [](size_t, double) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  MicroBatcher batcher(&engine, options);
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(batcher.Submit(MakeQuery(0)));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(batcher.Stats().deadline_expired, 0u);
}

TEST(MicroBatcherTest, ServiceTimeEwmaTracksBatches) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 2});
  MicroBatcher batcher(&engine, {});
  EXPECT_EQ(batcher.Stats().ewma_item_seconds, 0.0);  // no samples yet
  auto r = batcher.Submit(MakeQuery(0)).get();
  ASSERT_TRUE(r.ok());
  // One real solve has been measured; the EWMA is seeded with it.
  EXPECT_GT(batcher.Stats().ewma_item_seconds, 0.0);
  EXPECT_LT(batcher.Stats().ewma_item_seconds, 60.0);  // sanity
}

TEST(MicroBatcherTest, ShutdownDrainsQueuedRequests) {
  core::BatchEngine engine(&SharedWorkbench().repager(), {.num_threads = 2});
  MicroBatcherOptions options;
  options.flush_window = std::chrono::microseconds(30'000'000);
  auto batcher = std::make_unique<MicroBatcher>(&engine, options);
  std::vector<std::future<Result<core::RePagerResult>>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(batcher->Submit(MakeQuery(0)));
  batcher->Shutdown();  // must not drop the queued work
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  // Submitting after shutdown fails cleanly instead of hanging.
  auto late = batcher->Submit(MakeQuery(0));
  EXPECT_FALSE(late.get().ok());
}

}  // namespace
}  // namespace rpg::serve
