#include "serve/query_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rpg::serve {
namespace {

CachedResult MakeResult(size_t ranked_size) {
  auto result = std::make_shared<core::RePagerResult>();
  result->ranked.resize(ranked_size, 7);
  result->subgraph_nodes = ranked_size;
  return result;
}

// -------------------------------------------------------- canonical key

TEST(CanonicalQueryKeyTest, NormalizesCaseAndWhitespace) {
  std::string base = CanonicalQueryKey("graph neural networks", 30, 2020);
  EXPECT_EQ(CanonicalQueryKey("Graph  Neural   Networks", 30, 2020), base);
  EXPECT_EQ(CanonicalQueryKey("  graph neural networks  ", 30, 2020), base);
  EXPECT_EQ(CanonicalQueryKey("graph\tneural\nnetworks", 30, 2020), base);
}

TEST(CanonicalQueryKeyTest, DefaultsShareKeyWithExplicitDefaults) {
  core::RePagerOptions defaults;
  EXPECT_EQ(CanonicalQueryKey("q", 0, 0),
            CanonicalQueryKey("q", defaults.num_initial_seeds,
                              defaults.year_cutoff));
  EXPECT_EQ(CanonicalQueryKey("q", -1, -5), CanonicalQueryKey("q", 0, 0));
}

TEST(CanonicalQueryKeyTest, DistinctParametersDistinctKeys) {
  EXPECT_NE(CanonicalQueryKey("q", 10, 2020), CanonicalQueryKey("q", 20, 2020));
  EXPECT_NE(CanonicalQueryKey("q", 10, 2020), CanonicalQueryKey("q", 10, 2021));
  EXPECT_NE(CanonicalQueryKey("a b", 10, 2020),
            CanonicalQueryKey("ab", 10, 2020));
  // The field separator cannot be forged from query text: whitespace is
  // collapsed to single spaces, so "q 30" != ("q", seeds=30).
  EXPECT_NE(CanonicalQueryKey("q 30", 10, 2020),
            CanonicalQueryKey("q", 30, 2020));
}

// --------------------------------------------------------------- basics

TEST(QueryCacheTest, MissThenHit) {
  QueryCache cache;
  EXPECT_FALSE(cache.Lookup("k").has_value());
  CachedResult r = MakeResult(4);
  cache.Insert("k", r);
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative());
  EXPECT_EQ(hit->result.get(), r.get());  // shared, not copied
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(QueryCacheTest, InsertReplacesExisting) {
  QueryCacheOptions options;
  options.num_shards = 1;
  QueryCache cache(options);
  cache.Insert("k", MakeResult(4));
  CachedResult replacement = MakeResult(8);
  cache.Insert("k", replacement);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(cache.Lookup("k")->result.get(), replacement.get());
}

TEST(QueryCacheTest, ClearDropsEntriesKeepsCounters) {
  QueryCache cache;
  cache.Insert("a", MakeResult(4));
  cache.Insert("b", MakeResult(4));
  cache.Lookup("a");
  cache.Clear();
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

// ------------------------------------------------------ negative caching

TEST(QueryCacheTest, NegativeEntryRemembersStatus) {
  QueryCacheOptions options;
  options.num_shards = 1;
  QueryCache cache(options);
  cache.InsertNegative("bad", Status::NotFound("no hits for query"));
  auto hit = cache.Lookup("bad");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative());
  EXPECT_EQ(hit->result, nullptr);
  EXPECT_TRUE(hit->status.IsNotFound());
  EXPECT_EQ(hit->status.message(), "no hits for query");
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.negative_insertions, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.negative_entries, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 0u);  // positive hits stay separate
  EXPECT_GT(stats.bytes, 0u);
}

TEST(QueryCacheTest, NegativeCachingCanBeDisabled) {
  QueryCacheOptions options;
  options.cache_negative = false;
  QueryCache cache(options);
  cache.InsertNegative("bad", Status::NotFound("nope"));
  EXPECT_FALSE(cache.Lookup("bad").has_value());
  EXPECT_EQ(cache.Stats().negative_insertions, 0u);
}

TEST(QueryCacheTest, OkStatusNeverCachedAsNegative) {
  QueryCache cache;
  cache.InsertNegative("k", Status::OK());
  EXPECT_FALSE(cache.Lookup("k").has_value());
}

TEST(QueryCacheTest, PositiveInsertReplacesNegativeEntry) {
  QueryCacheOptions options;
  options.num_shards = 1;
  QueryCache cache(options);
  cache.InsertNegative("k", Status::NotFound("transiently hopeless"));
  CachedResult r = MakeResult(4);
  cache.Insert("k", r);
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative());
  EXPECT_EQ(hit->result.get(), r.get());
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.negative_entries, 0u);  // replaced, count adjusted
}

TEST(QueryCacheTest, NegativeEntriesShareLruAndEvict) {
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 2;
  options.max_bytes = 0;
  QueryCache cache(options);
  cache.InsertNegative("n1", Status::NotFound("x"));
  cache.Insert("p1", MakeResult(1));
  cache.Insert("p2", MakeResult(1));  // evicts n1 (LRU tail)
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.negative_entries, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_FALSE(cache.Lookup("n1").has_value());
}

// ------------------------------------------------- capacity + eviction

TEST(QueryCacheTest, EntryCapacityEvictsLru) {
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 3;
  options.max_bytes = 0;  // entries only
  QueryCache cache(options);
  cache.Insert("a", MakeResult(1));
  cache.Insert("b", MakeResult(1));
  cache.Insert("c", MakeResult(1));
  cache.Lookup("a");  // refresh a: LRU order is now b < c < a
  cache.Insert("d", MakeResult(1));
  EXPECT_EQ(cache.Stats().entries, 3u);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup("b").has_value());  // b was least recent
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
}

TEST(QueryCacheTest, ByteCapacityAccountingAndEviction) {
  CachedResult small = MakeResult(16);
  size_t unit = EstimateResultBytes(*small);
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 0;
  options.max_bytes = unit * 3 + unit / 2;  // fits 3, not 4
  QueryCache cache(options);
  cache.Insert("a", MakeResult(16));
  cache.Insert("b", MakeResult(16));
  cache.Insert("c", MakeResult(16));
  QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 3 * unit);
  cache.Insert("d", MakeResult(16));
  stats = cache.Stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(QueryCacheTest, OversizedEntryNotCached) {
  CachedResult big = MakeResult(100000);
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = 1024;
  QueryCache cache(options);
  cache.Insert("big", big);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup("big").has_value());
}

TEST(QueryCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  QueryCacheOptions options;
  options.num_shards = 5;
  QueryCache cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
  options.num_shards = 0;
  QueryCache one(options);
  EXPECT_EQ(one.num_shards(), 1u);
}

// ---------------------------------------------------------- concurrency

TEST(QueryCacheTest, ConcurrentMixedTraffic) {
  QueryCacheOptions options;
  options.max_entries = 64;
  QueryCache cache(options);
  constexpr int kThreads = 8, kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string((t * 7 + i) % 100);
        if (i % 3 == 0) {
          cache.Insert(key, MakeResult(8));
        } else {
          auto hit = cache.Lookup(key);
          if (hit) EXPECT_EQ(hit->result->ranked.size(), 8u);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  QueryCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 64u);
  // Per thread: 167 inserts (i % 3 == 0), 333 lookups.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * (kOps * 2 / 3));
}

}  // namespace
}  // namespace rpg::serve
