#include "serve/serve_engine.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve_test_util.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::serve {
namespace {

/// Per-field bit-identity against a serial RePaGer::Generate run.
void ExpectIdentical(const core::RePagerResult& served,
                     const core::RePagerResult& serial) {
  EXPECT_EQ(served.ranked, serial.ranked);
  EXPECT_EQ(served.path.nodes(), serial.path.nodes());
  EXPECT_EQ(served.path.edges(), serial.path.edges());
  EXPECT_EQ(served.initial_seeds, serial.initial_seeds);
  EXPECT_EQ(served.terminals, serial.terminals);
  EXPECT_EQ(served.subgraph_nodes, serial.subgraph_nodes);
  EXPECT_EQ(served.subgraph_edges, serial.subgraph_edges);
}

core::RePagerResult SerialReference(const std::string& query, int num_seeds,
                                    int year_cutoff) {
  core::RePagerOptions options;
  if (num_seeds > 0) options.num_initial_seeds = num_seeds;
  if (year_cutoff > 0) options.year_cutoff = year_cutoff;
  auto r = SharedWorkbench().repager().Generate(query, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ServeEngineTest, MissThenHitIdenticalToSerial) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(0);

  auto first = engine.Generate(entry.query, 0, entry.year);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  auto second = engine.Generate(entry.query, 0, entry.year);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.get(), first->result.get());  // shared entry

  core::RePagerResult serial = SerialReference(entry.query, 0, entry.year);
  ExpectIdentical(*first->result, serial);

  QueryCacheStats stats = engine.cache().Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeEngineTest, CanonicalKeyUnifiesEquivalentQueries) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(0);

  std::string shouted = entry.query;
  for (char& c : shouted) c = static_cast<char>(std::toupper(c));
  auto first = engine.Generate(entry.query, 0, entry.year);
  ASSERT_TRUE(first.ok());
  auto second = engine.Generate("  " + shouted + "  ", 0, entry.year);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // The normalization is sound: recomputing the shouted variant serially
  // yields the same result the cache returned.
  ExpectIdentical(*second->result, SerialReference(shouted, 0, entry.year));
}

TEST(ServeEngineTest, ErrorsPropagateAndAreNegativelyCached) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  auto r = engine.Generate("zzzz qqqq wwww", 0, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(engine.metrics().ToJson().find("\"errors_total\":0"),
            std::string::npos);  // errors_total incremented
  // The deterministic failure is remembered as a negative entry...
  QueryCacheStats stats = engine.cache().Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.negative_entries, 1u);
  EXPECT_EQ(stats.negative_insertions, 1u);
  // ...and an equivalent query (same canonical key) is answered from it
  // with the same status, without touching the pipeline again.
  auto again = engine.Generate("  ZZZZ qqqq   wwww ", 0, 0);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status(), r.status());
  EXPECT_EQ(engine.cache().Stats().negative_hits, 1u);
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"requests\":1"), std::string::npos)  // batcher
      << json;
  EXPECT_NE(json.find("\"negative_hits\":1"), std::string::npos);
}

TEST(ServeEngineTest, NegativeCachingCanBeDisabled) {
  ServeEngineOptions options;
  options.num_threads = 2;
  options.cache.cache_negative = false;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  EXPECT_FALSE(engine.Generate("zzzz qqqq wwww", 0, 0).ok());
  EXPECT_FALSE(engine.Generate("zzzz qqqq wwww", 0, 0).ok());
  QueryCacheStats stats = engine.cache().Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.negative_insertions, 0u);
  // Both requests reached the batcher: no negative entry intervened.
  EXPECT_NE(engine.StatsJson().find("\"requests\":2"), std::string::npos);
}

TEST(ServeEngineTest, GenerateAsyncDeliversIdenticalResult) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(2);

  std::promise<Result<ServeResponse>> cold_promise;
  auto cold_future = cold_promise.get_future();
  engine.GenerateAsync(entry.query, 0, entry.year,
                       [&](Result<ServeResponse> r) {
                         cold_promise.set_value(std::move(r));
                       });
  Result<ServeResponse> cold = cold_future.get();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cache_hit);
  ExpectIdentical(*cold->result,
                  SerialReference(entry.query, 0, entry.year));

  // Warm call completes inline (cache hit) before GenerateAsync returns.
  bool hit_inline = false;
  engine.GenerateAsync(entry.query, 0, entry.year,
                       [&](Result<ServeResponse> r) {
                         hit_inline = r.ok() && r->cache_hit;
                       });
  EXPECT_TRUE(hit_inline);
}

TEST(ServeEngineTest, DisabledCacheAlwaysComputes) {
  ServeEngineOptions options;
  options.num_threads = 2;
  options.enable_cache = false;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(0);
  auto first = engine.Generate(entry.query, 0, entry.year);
  auto second = engine.Generate(entry.query, 0, entry.year);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(engine.cache().Stats().entries, 0u);
  ExpectIdentical(*second->result, *first->result);
}

TEST(ServeEngineTest, ConcurrentIdenticalRequestsComputeOnce) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(1);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = engine.Generate(entry.query, 0, entry.year);
      if (!r.ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Single-flight: at most one computation ran (insertions == 1); the
  // other requests were cache hits or coalesced onto the flight.
  QueryCacheStats stats = engine.cache().Stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(engine.ClearCache(), 1u);
}

TEST(ServeEngineTest, StatsJsonIsLive) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&SharedWorkbench().repager(), options);
  const auto& entry = SharedWorkbench().bank().Get(0);
  engine.Generate(entry.query, 0, entry.year);
  engine.Generate(entry.query, 0, entry.year);
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"requests_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(json.find("\"batches\":1"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\":"), std::string::npos);
}

TEST(ServeEngineTest, OverloadShedsWith429AndRetryAfter) {
  const eval::Workbench& wb = SharedWorkbench();
  // A deliberately tiny admission queue: one solve at a time, one
  // waiter; the rest of a burst must shed.
  ServeEngineOptions options;
  options.num_threads = 1;
  options.batcher.max_batch_size = 1;
  options.batcher.max_queue_depth = 1;
  ServeEngine engine(&wb.repager(), options);
  ui::RePagerService service(&engine, &wb.repager(), &wb.titles(),
                             &wb.years());
  const auto& entry = wb.bank().Get(0);

  // Distinct `seeds` values make distinct canonical keys, so nothing
  // coalesces or caches: every request really reaches the batcher.
  constexpr int kBurst = 8;
  std::mutex mu;
  std::vector<ui::HttpResponse> responses;
  for (int i = 0; i < kBurst; ++i) {
    ui::HttpRequest request{"GET",
                            "/api/path",
                            {{"q", entry.query},
                             {"seeds", std::to_string(5 + i)},
                             {"year", std::to_string(entry.year)}}};
    service.HandleAsync(request, [&](ui::HttpResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
  }
  for (int i = 0; i < 1000; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (responses.size() == kBurst) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  int ok = 0, shed = 0;
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kBurst));
  for (const ui::HttpResponse& response : responses) {
    if (response.status == 200) {
      ++ok;
      continue;
    }
    // The shed path end to end: typed Unavailable -> 429 + Retry-After.
    // The hint is the batcher's measured drain time, clamped to [1, 30];
    // with a single-entry queue on a fast corpus it resolves to 1, but
    // the contract is the clamp, not the constant.
    EXPECT_EQ(response.status, 429) << response.body;
    EXPECT_NE(response.body.find("Unavailable"), std::string::npos);
    ASSERT_TRUE(response.headers.count("Retry-After"));
    const int retry_after = std::stoi(response.headers.at("Retry-After"));
    EXPECT_GE(retry_after, 1);
    EXPECT_LE(retry_after, 30);
    ++shed;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  // Sheds are transient: never remembered as negative cache entries
  // (the same query must be retryable), but counted in the stats.
  EXPECT_EQ(engine.cache().Stats().negative_entries, 0u);
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"rejected_overload\":" + std::to_string(shed)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shed_total\":" + std::to_string(shed)),
            std::string::npos)
      << json;
}

TEST(ServeEngineTest, QueueDeadlineExpiryMapsTo503WithRetryAfter) {
  const eval::Workbench& wb = SharedWorkbench();
  // One solve at a time with a 1 ms queue deadline: the tail of a burst
  // has aged out by the time the dispatcher reaches it (each predecessor
  // costs a full pipeline solve), and must be answered with a typed
  // DeadlineExceeded -> 503 instead of being solved for nobody.
  ServeEngineOptions options;
  options.num_threads = 1;
  options.batcher.max_batch_size = 1;
  options.batcher.queue_deadline = std::chrono::milliseconds(5);
  ServeEngine engine(&wb.repager(), options);
  ui::RePagerService service(&engine, &wb.repager(), &wb.titles(),
                             &wb.years());
  const auto& entry = wb.bank().Get(0);

  constexpr int kBurst = 10;
  std::mutex mu;
  std::vector<ui::HttpResponse> responses;
  for (int i = 0; i < kBurst; ++i) {
    ui::HttpRequest request{"GET",
                            "/api/path",
                            {{"q", entry.query},
                             {"seeds", std::to_string(5 + i)},
                             {"year", std::to_string(entry.year)}}};
    service.HandleAsync(request, [&](ui::HttpResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
    if (i == 0) {
      // Let the head of the burst finish before queueing the tail: the
      // contract under test is "head solved, tail aged out", and on a
      // loaded machine even the first dispatch can lose a race with a
      // too-tight deadline if the whole burst is queued blind.
      for (int spin = 0; spin < 1000; ++spin) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!responses.empty()) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  for (int i = 0; i < 1000; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (responses.size() == kBurst) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  int ok = 0, expired = 0;
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kBurst));
  for (const ui::HttpResponse& response : responses) {
    if (response.status == 200) {
      ++ok;
      continue;
    }
    // Expiry end to end: DeadlineExceeded -> 503 (not the 429 shed
    // path: the work was accepted, then abandoned) + Retry-After from
    // the measured drain time.
    EXPECT_EQ(response.status, 503) << response.body;
    EXPECT_NE(response.body.find("DeadlineExceeded"), std::string::npos);
    ASSERT_TRUE(response.headers.count("Retry-After"));
    const int retry_after = std::stoi(response.headers.at("Retry-After"));
    EXPECT_GE(retry_after, 1);
    EXPECT_LE(retry_after, 30);
    ++expired;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(expired, 1);
  // Stats snapshot before the retry below, whose own (transient) expiry
  // under machine load would otherwise skew the exact counters.
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"deadline_expired\":" + std::to_string(expired)),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"deadline_exceeded_total\":" + std::to_string(expired)),
      std::string::npos)
      << json;
  // Expiries are transient overload, never negative-cached; retrying an
  // expired query computes fine once the burst has passed. A retry can
  // itself age out on a loaded machine — that too is transient, so the
  // test retries the retry.
  EXPECT_EQ(engine.cache().Stats().negative_entries, 0u);
  auto retry = engine.Generate(entry.query, 5 + kBurst - 1, entry.year);
  for (int attempt = 0; attempt < 50 && !retry.ok(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    retry = engine.Generate(entry.query, 5 + kBurst - 1, entry.year);
  }
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(ServeEngineTest, ShedQuerySucceedsOnRetry) {
  const eval::Workbench& wb = SharedWorkbench();
  ServeEngineOptions options;
  options.num_threads = 1;
  options.batcher.max_batch_size = 1;
  options.batcher.max_queue_depth = 1;
  ServeEngine engine(&wb.repager(), options);
  const auto& entry = wb.bank().Get(1);
  // Overload the queue, remembering which seed counts were shed.
  constexpr int kBurst = 6;
  std::mutex mu;
  std::vector<int> shed_seeds;
  std::atomic<int> done_count{0};
  for (int i = 0; i < kBurst; ++i) {
    int seeds = 5 + i;
    engine.GenerateAsync(entry.query, seeds, entry.year,
                         [&, seeds](Result<ServeResponse> r) {
                           if (!r.ok() && r.status().IsUnavailable()) {
                             std::lock_guard<std::mutex> lock(mu);
                             shed_seeds.push_back(seeds);
                           }
                           ++done_count;
                         });
  }
  while (done_count.load() < kBurst) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(shed_seeds.empty());
  // Retrying a shed request once the burst passed must compute fine —
  // the 429 left no poisoned negative entry behind.
  auto retry = engine.Generate(entry.query, shed_seeds.front(), entry.year);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->cache_hit);
}

TEST(ServeEngineTest, StopDrainsInFlightSolveEndToEnd) {
  const eval::Workbench& wb = SharedWorkbench();
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&wb.repager(), options);
  ui::RePagerService service(&engine, &wb.repager(), &wb.titles(),
                             &wb.years());
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      });
  int port = server.Start(0).value();
  const auto& entry = wb.bank().Get(2);
  std::string q;
  for (char ch : entry.query) q += (ch == ' ') ? '+' : ch;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = "GET /api/path?q=" + q +
                        "&year=" + std::to_string(entry.year) +
                        " HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // Wait until the solve is in flight, then stop: the graceful drain
  // must let the compute finish and flush the response before closing.
  for (int i = 0; i < 500 && server.Stats().requests_handled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(server.Stats().requests_handled, 1u);
  server.Stop();

  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("reading_order"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

// ------------------------------------------- end-to-end over HTTP sockets

TEST(ServeEngineTest, ConcurrentHttpRequestsBitIdenticalToSerial) {
  const eval::Workbench& wb = SharedWorkbench();
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&wb.repager(), options);
  ui::RePagerService service(&engine, &wb.repager(), &wb.titles(),
                             &wb.years());
  // The production path: async handler on the epoll reactor, so poller
  // threads hand compute to the engine instead of blocking on it.
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      });
  int port = server.Start(0).value();

  // Serial reference bodies, rendered through an independent engine so
  // no serving state is shared with the system under test.
  ServeEngineOptions ref_options;
  ref_options.num_threads = 1;
  ref_options.enable_cache = false;
  ref_options.batcher.max_batch_size = 1;
  ServeEngine ref_engine(&wb.repager(), ref_options);
  ui::RePagerService ref_service(&ref_engine, &wb.repager(), &wb.titles(),
                                 &wb.years());

  constexpr int kClients = 4, kRounds = 3;
  std::vector<std::string> expected(kClients);
  std::vector<std::string> targets(kClients);
  auto strip = [](const std::string& body) {
    // Serving metadata (serve_seconds, cache_hit, seconds) differs
    // between paths; the path payload itself must be bit-identical.
    size_t at = body.find("\"nodes\":");
    return at == std::string::npos ? body : body.substr(at);
  };
  for (int c = 0; c < kClients; ++c) {
    const auto& entry = wb.bank().Get(static_cast<size_t>(c));
    std::string q;
    for (char ch : entry.query) q += (ch == ' ') ? '+' : ch;
    targets[c] = "/api/path?q=" + q + "&year=" + std::to_string(entry.year);
    auto body =
        ref_service.PathJson(entry.query, 0, entry.year);
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    expected[c] = strip(body.value());
  }

  std::atomic<int> mismatches{0}, errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ui::HttpClient client;
      if (!client.Connect(port).ok()) {
        ++errors;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        auto r = client.Fetch("GET", targets[c]);
        if (!r.ok() || r->status != 200) {
          ++errors;
          continue;
        }
        if (strip(r->body) != expected[c]) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Each distinct query computed once; the rest were served hot.
  QueryCacheStats stats = engine.cache().Stats();
  EXPECT_EQ(stats.insertions, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kClients * (kRounds - 1)));
  server.Stop();
}

// A slow client must not corrupt its own response: the reactor parks
// the partially-written response on EPOLLOUT and resumes as the
// client's window opens, and the payload stays bit-identical to serial.
TEST(ServeEngineTest, SlowClientReceivesBitIdenticalResponse) {
  const eval::Workbench& wb = SharedWorkbench();
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&wb.repager(), options);
  ui::RePagerService service(&engine, &wb.repager(), &wb.titles(),
                             &wb.years());
  ui::HttpServer server(
      [&](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        service.HandleAsync(request, std::move(done));
      });
  int port = server.Start(0).value();

  const auto& entry = wb.bank().Get(0);
  auto reference = service.PathJson(entry.query, 0, entry.year);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto strip = [](const std::string& body) {
    size_t at = body.find("\"nodes\":");
    return at == std::string::npos ? body : body.substr(at);
  };

  // Raw socket with a tiny receive buffer, read in 128-byte sips: the
  // server sees a crawling peer while other clients stay responsive.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string q;
  for (char ch : entry.query) q += (ch == ' ') ? '+' : ch;
  std::string request = "GET /api/path?q=" + q +
                        "&year=" + std::to_string(entry.year) +
                        " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char sip[128];
  ssize_t n;
  while ((n = ::read(fd, sip, sizeof(sip))) > 0) {
    response.append(sip, static_cast<size_t>(n));
    if (response.size() % 4096 < sizeof(sip)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(fd);
  size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(strip(response.substr(body_at + 4)), strip(reference.value()));
  server.Stop();
}

}  // namespace
}  // namespace rpg::serve
