#ifndef RPG_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define RPG_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include "eval/workbench.h"

namespace rpg::serve {

/// Process-wide small workbench shared by every serve suite (built once,
/// intentionally leaked — the corpus build dominates test time).
inline const eval::Workbench& SharedWorkbench() {
  static const eval::Workbench* wb = [] {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 50;
    options.corpus.papers_per_area = 15;
    options.corpus.papers_per_domain = 10;
    options.corpus.num_surveys = 40;
    options.corpus.seed = 55;
    return eval::Workbench::Create(options).value().release();
  }();
  return *wb;
}

}  // namespace rpg::serve

#endif  // RPG_TESTS_SERVE_SERVE_TEST_UTIL_H_
