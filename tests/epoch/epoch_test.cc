// Epoch-based serving state (serve/epoch.h): RCU snapshot swap, epoch-
// stamped cache invalidation, fail-closed reload, and the bit-identity
// pins the refactor promises:
//  - an epoch flip under live concurrent load completes with zero
//    request errors, and every in-flight request is answered
//    bit-identically from the epoch it started on (TSan-covered in CI);
//  - post-flip results equal a fresh process booted from the new
//    snapshot (golden fingerprint);
//  - a corrupt reload candidate is rejected with the serving epoch
//    untouched;
//  - flip invalidation needs no global cache clear — stale stamps are
//    lazily evicted on lookup, and the counters prove it.

#include "serve/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../snapshot/snapshot_test_util.h"
#include "common/logging.h"
#include "serve/serve_engine.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::serve {
namespace {

/// This suite's own on-disk snapshots. Not snapshot_test_util's
/// TestSnapshotPath: that static writes on first use in EVERY process,
/// so sharing its files with rpg_snapshot_test races under `ctest -j`
/// (one binary mmap-reads while the other rewrites).
const std::string& EpochSnapshotPath(bool relabel) {
  static const std::string* paths[2] = {nullptr, nullptr};
  const int slot = relabel ? 1 : 0;
  if (paths[slot] == nullptr) {
    auto path = (std::filesystem::temp_directory_path() /
                 (relabel ? "rpg_epoch_test_relabel.snap"
                          : "rpg_epoch_test.snap"))
                    .string();
    snapshot::SnapshotWriterOptions options;
    options.relabel = relabel;
    Status status =
        snapshot::WriteSnapshot(snapshot::TestInput(), path, options);
    RPG_CHECK(status.ok());
    paths[slot] = new std::string(path);
  }
  return *paths[slot];
}

/// The snapshot file's bytes (for the corruption tests).
std::vector<uint8_t> EpochSnapshotImage(bool relabel) {
  std::ifstream is(EpochSnapshotPath(relabel), std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(is),
                              std::istreambuf_iterator<char>());
}

/// Epoch A: the test snapshot as written (original paper ids).
/// Epoch B: the SAME corpus, BFS-relabeled — every query resolves in
/// both, but the paper ids (and therefore the result bytes) differ, so
/// a fingerprint tells the epochs apart.
EpochHandle LoadTestEpoch(bool relabel, uint64_t id) {
  auto epoch_or = LoadEpochFromSnapshot(EpochSnapshotPath(relabel), id);
  EXPECT_TRUE(epoch_or.ok()) << epoch_or.status().ToString();
  return epoch_or.value();
}

/// Order-sensitive FNV-1a over every id-carrying field of the result:
/// two results fingerprint equal iff they are bit-identical where it
/// matters (ranked order, path structure, seeds, terminals).
uint64_t Fingerprint(const core::RePagerResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (graph::PaperId p : r.ranked) mix(p);
  mix(0xABull);
  for (graph::PaperId p : r.path.nodes()) mix(p);
  mix(0xCDull);
  for (const auto& [a, b] : r.path.edges()) {
    mix(a);
    mix(b);
  }
  mix(0xEFull);
  for (graph::PaperId p : r.initial_seeds) mix(p);
  for (graph::PaperId p : r.terminals) mix(p);
  mix(r.subgraph_nodes);
  mix(r.subgraph_edges);
  return h;
}

/// The per-epoch reference: what a fresh, serial, uncached Generate on
/// this epoch's substrate produces for `query`.
uint64_t ReferenceFingerprint(const Epoch& epoch, const std::string& query,
                              int year_cutoff) {
  core::RePagerOptions options;
  if (year_cutoff > 0) options.year_cutoff = year_cutoff;
  auto r = epoch.repager().Generate(query, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Fingerprint(*r);
}

/// A handful of SurveyBank queries every suite below shares (the
/// snapshot corpus is the same workbench corpus, so they hit in every
/// epoch).
std::vector<std::string> TestQueries(size_t n) {
  const eval::Workbench& wb = snapshot::TestWorkbench();
  std::vector<std::string> queries;
  for (size_t i = 0; i < n && i < wb.bank().size(); ++i) {
    queries.push_back(wb.bank().Get(i).query);
  }
  return queries;
}

TEST(EpochTest, BorrowedCompatServesIdenticalToDirectGenerate) {
  // The raw-pointer compat path: a Borrowed epoch (id 0) behind the old
  // ServeEngine(const RePaGer*) constructor.
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(&snapshot::TestWorkbench().repager(), options);
  EXPECT_EQ(engine.CurrentEpoch()->id(), 0u);
  EXPECT_EQ(engine.CurrentEpoch()->info().source, "borrowed");

  const std::string query = TestQueries(1).front();
  auto served = engine.Generate(query, 0, 0);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  auto direct = snapshot::TestWorkbench().repager().Generate(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Fingerprint(*served->result), Fingerprint(*direct));
  // The response pins its epoch even on the compat path.
  ASSERT_NE(served->epoch, nullptr);
  EXPECT_EQ(served->epoch->id(), 0u);
}

TEST(EpochTest, SnapshotEpochCarriesMetadata) {
  EpochHandle epoch = LoadTestEpoch(/*relabel=*/false, /*id=*/1);
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->id(), 1u);
  ASSERT_NE(epoch->titles(), nullptr);
  ASSERT_NE(epoch->years(), nullptr);
  EXPECT_EQ(epoch->titles()->size(), epoch->info().num_papers);
  EXPECT_GT(epoch->info().num_edges, 0u);
  EXPECT_EQ(epoch->info().source, EpochSnapshotPath(false));
  EXPECT_GT(epoch->info().loaded_unix_ms, 0);
}

TEST(EpochTest, FlipInvalidatesLazilyWithoutGlobalClear) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(LoadTestEpoch(false, 1), options);
  const std::string query = TestQueries(1).front();

  // Epoch 1: miss -> compute -> insert; then a stamped hit.
  ASSERT_TRUE(engine.Generate(query, 0, 0).ok());
  auto hit = engine.Generate(query, 0, 0);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  QueryCacheStats before = engine.cache().Stats();
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.stale_evictions, 0u);
  ASSERT_GE(before.entries, 1u);

  // Flip. The entry population is untouched (no global clear) — only
  // its stamps went stale.
  engine.SwapEpoch(LoadTestEpoch(true, 2));
  EXPECT_EQ(engine.epoch_flips(), 1u);
  EXPECT_EQ(engine.CurrentEpoch()->id(), 2u);
  EXPECT_EQ(engine.cache().Stats().entries, before.entries);

  // Same query on epoch 2: the stale stamp is evicted on lookup, the
  // query recomputes on the new substrate, and the replacement entry
  // serves the follow-up hit.
  auto recomputed = engine.Generate(query, 0, 0);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed->cache_hit);
  EXPECT_EQ(recomputed->epoch->id(), 2u);
  auto rehit = engine.Generate(query, 0, 0);
  ASSERT_TRUE(rehit.ok());
  EXPECT_TRUE(rehit->cache_hit);

  QueryCacheStats after = engine.cache().Stats();
  EXPECT_EQ(after.stale_evictions, 1u);
  // The per-epoch split: epoch 1's entry went stale; epoch 2 took one
  // miss (the recompute) and one hit (the re-lookup).
  bool saw_epoch1 = false, saw_epoch2 = false;
  for (const EpochCacheStats& e : after.by_epoch) {
    if (e.epoch == 1) {
      saw_epoch1 = true;
      EXPECT_EQ(e.stale_evictions, 1u);
    }
    if (e.epoch == 2) {
      saw_epoch2 = true;
      EXPECT_GE(e.misses, 1u);
      EXPECT_GE(e.hits, 1u);
    }
  }
  EXPECT_TRUE(saw_epoch1);
  EXPECT_TRUE(saw_epoch2);
}

TEST(EpochTest, CorruptReloadRejectedServingUninterrupted) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(LoadTestEpoch(false, 1), options);
  const std::string query = TestQueries(1).front();
  ASSERT_TRUE(engine.Generate(query, 0, 0).ok());

  // A corrupt reload candidate: one flipped byte deep in the section
  // payloads (past the header so the damage lands in checksummed data).
  std::vector<uint8_t> bytes = EpochSnapshotImage(false);
  ASSERT_GT(bytes.size(), 1024u);
  bytes[bytes.size() * 3 / 4] ^= 0x40;
  auto corrupt_path = (std::filesystem::temp_directory_path() /
                       "rpg_epoch_test_corrupt.snap")
                          .string();
  {
    std::ofstream os(corrupt_path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }

  // Fail-closed: the load (open-time validation or the full
  // VerifyAllChecksums audit) rejects the candidate with a typed error
  // and nothing is constructed or swapped.
  auto epoch_or = LoadEpochFromSnapshot(corrupt_path, 2);
  ASSERT_FALSE(epoch_or.ok());
  EXPECT_TRUE(epoch_or.status().IsInvalidArgument())
      << epoch_or.status().ToString();
  EXPECT_FALSE(epoch_or.status().message().empty());

  // The serving epoch is untouched and requests keep succeeding.
  EXPECT_EQ(engine.CurrentEpoch()->id(), 1u);
  EXPECT_EQ(engine.epoch_flips(), 0u);
  auto after = engine.Generate(query, 0, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch->id(), 1u);

  std::filesystem::remove(corrupt_path);
}

TEST(EpochTest, ReloadEndpointFlipsAndRejectsCorrupt) {
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(LoadTestEpoch(false, 1), options);
  ui::RePagerService service(&engine);

  // Happy path: POST the relabeled snapshot's path; the service loads,
  // audits, and flips.
  ui::HttpRequest reload;
  reload.method = "POST";
  reload.path = "/api/admin/reload";
  reload.body = EpochSnapshotPath(true);
  ui::HttpResponse response = service.Handle(reload);
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"reloaded\":true"), std::string::npos);
  EXPECT_EQ(engine.CurrentEpoch()->id(), 2u);
  EXPECT_EQ(engine.epoch_flips(), 1u);

  // /api/stats reflects the flip.
  ui::HttpRequest stats;
  stats.method = "GET";
  stats.path = "/api/stats";
  ui::HttpResponse stats_response = service.Handle(stats);
  EXPECT_EQ(stats_response.status, 200);
  EXPECT_NE(stats_response.body.find("\"epoch\":{\"id\":2,\"flips\":1"),
            std::string::npos)
      << stats_response.body;

  // GET /metrics carries the epoch instruments.
  ui::HttpRequest metrics;
  metrics.method = "GET";
  metrics.path = "/metrics";
  ui::HttpResponse metrics_response = service.Handle(metrics);
  EXPECT_EQ(metrics_response.status, 200);
  EXPECT_NE(metrics_response.body.find("rpg_epoch_id 2"), std::string::npos);
  EXPECT_NE(metrics_response.body.find("rpg_epoch_flips_total 1"),
            std::string::npos);
  EXPECT_NE(metrics_response.body.find("rpg_epoch_last_reload_unix_seconds"),
            std::string::npos);

  // Corrupt candidate over HTTP: 400 (typed InvalidArgument naming the
  // offending layer), serving epoch untouched.
  std::vector<uint8_t> bytes = EpochSnapshotImage(false);
  bytes[bytes.size() / 2] ^= 0x01;
  auto corrupt_path = (std::filesystem::temp_directory_path() /
                       "rpg_epoch_reload_corrupt.snap")
                          .string();
  {
    std::ofstream os(corrupt_path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }
  reload.body = corrupt_path;
  response = service.Handle(reload);
  EXPECT_EQ(response.status, 400) << response.body;
  EXPECT_NE(response.body.find("\"reloaded\":false"), std::string::npos);
  EXPECT_EQ(engine.CurrentEpoch()->id(), 2u);

  // Missing file: 404, also fail-closed.
  reload.body = "/nonexistent/rpg_epoch_test.snap";
  response = service.Handle(reload);
  EXPECT_EQ(response.status, 404) << response.body;
  EXPECT_EQ(engine.CurrentEpoch()->id(), 2u);

  std::filesystem::remove(corrupt_path);
}

TEST(EpochTest, PostFlipResultsEqualFreshBootFromNewSnapshot) {
  // The golden-fingerprint pin: after flipping to epoch B, every result
  // must be byte-identical to what a fresh process booted from B's
  // snapshot computes.
  std::vector<std::string> queries = TestQueries(4);
  ServeEngineOptions options;
  options.num_threads = 2;
  ServeEngine engine(LoadTestEpoch(false, 1), options);
  for (const std::string& q : queries) {
    ASSERT_TRUE(engine.Generate(q, 0, 0).ok());
  }
  engine.SwapEpoch(LoadTestEpoch(true, 2));

  // "Fresh boot": a separate load of the same snapshot file — its own
  // mmap, its own substrate, no shared state with the serving engine.
  EpochHandle fresh = LoadTestEpoch(true, 2);
  for (const std::string& q : queries) {
    auto served = engine.Generate(q, 0, 0);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_FALSE(served->cache_hit);  // old stamps must not leak through
    EXPECT_EQ(served->epoch->id(), 2u);
    EXPECT_EQ(Fingerprint(*served->result),
              ReferenceFingerprint(*fresh, q, 0))
        << "post-flip result diverges from fresh boot for query: " << q;
  }
}

TEST(EpochTest, ConcurrentFlipWhileServingZeroErrorsBitIdentical) {
  // The live-churn pin (runs under TSan in the tsan-serve CI job):
  // worker threads hammer the engine while the main thread flips the
  // epoch back and forth. Every response must (a) succeed, (b) carry an
  // epoch handle consistent with its result bytes — i.e. in-flight
  // requests finish bit-identically on the epoch they started on.
  EpochHandle a = LoadTestEpoch(false, 1);
  EpochHandle b = LoadTestEpoch(true, 2);
  std::vector<std::string> queries = TestQueries(3);
  std::vector<uint64_t> fp_a, fp_b;
  for (const std::string& q : queries) {
    fp_a.push_back(ReferenceFingerprint(*a, q, 0));
    fp_b.push_back(ReferenceFingerprint(*b, q, 0));
  }

  ServeEngineOptions options;
  options.num_threads = 2;
  options.batcher.flush_window = std::chrono::microseconds(200);
  ServeEngine engine(a, options);

  constexpr int kWorkers = 4;
  constexpr int kIterations = 25;
  std::atomic<int> errors{0};
  std::atomic<int> mismatches{0};
  std::atomic<bool> stop_flipping{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t qi = static_cast<size_t>(w + i) % queries.size();
        auto served = engine.Generate(queries[qi], 0, 0);
        if (!served.ok()) {
          ++errors;
          continue;
        }
        const uint64_t id = served->epoch->id();
        const uint64_t fp = Fingerprint(*served->result);
        const uint64_t expected = id == 1 ? fp_a[qi] : fp_b[qi];
        if ((id != 1 && id != 2) || fp != expected) ++mismatches;
      }
    });
  }
  std::thread flipper([&] {
    bool to_b = true;
    while (!stop_flipping.load(std::memory_order_relaxed)) {
      engine.SwapEpoch(to_b ? b : a);
      to_b = !to_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : workers) t.join();
  stop_flipping.store(true, std::memory_order_relaxed);
  flipper.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(engine.epoch_flips(), 1u);

  // The flip machinery must not have cleared the cache wholesale: stale
  // stamps drain one lookup at a time. The concurrent section may or
  // may not have crossed a flip boundary (a fast run finishes inside
  // one window), so force one deterministic stale hit: populate on A,
  // flip to B, re-ask.
  const uint64_t stale_before = engine.cache().Stats().stale_evictions;
  engine.SwapEpoch(a);
  ASSERT_TRUE(engine.Generate(queries[0], 0, 0).ok());
  engine.SwapEpoch(b);
  auto post = engine.Generate(queries[0], 0, 0);
  ASSERT_TRUE(post.ok());
  EXPECT_FALSE(post->cache_hit);
  EXPECT_GT(engine.cache().Stats().stale_evictions, stale_before);
}

}  // namespace
}  // namespace rpg::serve
