#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "steiner/exact.h"
#include "steiner/newst.h"
#include "steiner/takahashi.h"
#include "test_graphs.h"

namespace rpg::steiner {
namespace {

TEST(ExactSteinerTest, SingleTerminal) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.SetNodeWeight(2, 4.0);
  WeightedGraph g = b.Build();
  auto r = SolveExactSteiner(g, {2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{2}));
  EXPECT_DOUBLE_EQ(r->total_cost, 4.0);
}

TEST(ExactSteinerTest, TwoTerminalsIsShortestPath) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(0, 3, 5.0);
  b.AddEdge(3, 2, 5.0);
  WeightedGraph g = b.Build();
  auto r = SolveExactSteiner(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
}

TEST(ExactSteinerTest, RejectsBadInput) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_TRUE(SolveExactSteiner(g, {}).status().IsInvalidArgument());
  EXPECT_TRUE(SolveExactSteiner(g, {9}).status().IsInvalidArgument());
  std::vector<uint32_t> too_many;
  for (uint32_t i = 0; i < 13; ++i) too_many.push_back(i);
  WeightedGraphBuilder big_builder(13);
  for (uint32_t i = 0; i + 1 < 13; ++i) big_builder.AddEdge(i, i + 1, 1.0);
  WeightedGraph big = big_builder.Build();
  EXPECT_TRUE(SolveExactSteiner(big, too_many).status().IsInvalidArgument());
}

TEST(ExactSteinerTest, DisconnectedTerminalsFail) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(SolveExactSteiner(g, {0, 2}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExactSteinerTest, NeverWorseThanHeuristics) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedGraph g = RandomConnected(&rng, 12, 10);
    auto terminals = RandomTerminals(&rng, 12, 4);
    auto exact = SolveExactSteiner(g, terminals);
    auto kmb = SolveNewst(g, terminals);
    auto tm = SolveTakahashiMatsuyama(g, terminals);
    ASSERT_TRUE(exact.ok() && kmb.ok() && tm.ok());
    EXPECT_LE(exact->total_cost, kmb->total_cost + 1e-9) << trial;
    EXPECT_LE(exact->total_cost, tm->total_cost + 1e-9) << trial;
    // KMB guarantee relative to the true optimum.
    EXPECT_LE(kmb->total_cost, 2.0 * exact->total_cost + 1e-9) << trial;
    EXPECT_LE(tm->total_cost, 2.0 * exact->total_cost + 1e-9) << trial;
  }
}

TEST(ExactSteinerTest, AblationFlagsRespected) {
  Rng rng(778);
  WeightedGraph g = RandomConnected(&rng, 10, 8);
  auto terminals = RandomTerminals(&rng, 10, 3);
  for (bool node_weights : {true, false}) {
    for (bool edge_weights : {true, false}) {
      NewstOptions options;
      options.use_node_weights = node_weights;
      options.use_edge_weights = edge_weights;
      auto exact = SolveExactSteiner(g, terminals, options);
      auto kmb = SolveNewst(g, terminals, options);
      ASSERT_TRUE(exact.ok() && kmb.ok());
      EXPECT_LE(exact->total_cost, kmb->total_cost + 1e-9);
    }
  }
}

TEST(TakahashiTest, SingleAndTwoTerminals) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  WeightedGraph g = b.Build();
  auto one = SolveTakahashiMatsuyama(g, {1});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->nodes, (std::vector<uint32_t>{1}));
  auto two = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->nodes, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(two->edges.size(), 2u);
}

TEST(TakahashiTest, AvoidsHeavyNodes) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(0, 3, 1.2);
  b.AddEdge(3, 2, 1.2);
  b.SetNodeWeight(1, 50.0);
  WeightedGraph g = b.Build();
  auto r = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::find(r->nodes.begin(), r->nodes.end(), 3) !=
              r->nodes.end());
}

TEST(TakahashiTest, UnreachableTerminalsReported) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->unreachable_terminals, (std::vector<uint32_t>{2}));
}

TEST(TakahashiTest, CostMatchesTreeCost) {
  Rng rng(779);
  WeightedGraph g = RandomConnected(&rng, 15, 12);
  auto terminals = RandomTerminals(&rng, 15, 5);
  auto r = SolveTakahashiMatsuyama(g, terminals);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->total_cost, g.TreeCost(r->edges), 1e-9);
}

}  // namespace
}  // namespace rpg::steiner
