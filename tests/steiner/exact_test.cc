#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "steiner/exact.h"
#include "steiner/newst.h"
#include "steiner/takahashi.h"

namespace rpg::steiner {
namespace {

WeightedGraph RandomConnected(Rng* rng, uint32_t n, int extra_edges) {
  WeightedGraph g(n);
  for (uint32_t v = 0; v < n; ++v) {
    g.SetNodeWeight(v, rng->UniformDouble(0.0, 2.0));
  }
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, (i + 1) % n, rng->UniformDouble(0.2, 3.0));
  }
  for (int e = 0; e < extra_edges; ++e) {
    uint32_t u = static_cast<uint32_t>(rng->NextBounded(n));
    uint32_t v = static_cast<uint32_t>(rng->NextBounded(n));
    if (u != v) g.AddEdge(u, v, rng->UniformDouble(0.2, 3.0));
  }
  return g;
}

std::vector<uint32_t> RandomTerminals(Rng* rng, uint32_t n, uint32_t k) {
  std::vector<uint32_t> terminals;
  for (uint64_t t : rng->SampleWithoutReplacement(n, k)) {
    terminals.push_back(static_cast<uint32_t>(t));
  }
  return terminals;
}

TEST(ExactSteinerTest, SingleTerminal) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.SetNodeWeight(2, 4.0);
  auto r = SolveExactSteiner(g, {2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{2}));
  EXPECT_DOUBLE_EQ(r->total_cost, 4.0);
}

TEST(ExactSteinerTest, TwoTerminalsIsShortestPath) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(0, 3, 5.0);
  g.AddEdge(3, 2, 5.0);
  auto r = SolveExactSteiner(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(r->total_cost, 2.0);
}

TEST(ExactSteinerTest, RejectsBadInput) {
  WeightedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  EXPECT_TRUE(SolveExactSteiner(g, {}).status().IsInvalidArgument());
  EXPECT_TRUE(SolveExactSteiner(g, {9}).status().IsInvalidArgument());
  std::vector<uint32_t> too_many;
  for (uint32_t i = 0; i < 13; ++i) too_many.push_back(i);
  WeightedGraph big(13);
  for (uint32_t i = 0; i + 1 < 13; ++i) big.AddEdge(i, i + 1, 1.0);
  EXPECT_TRUE(SolveExactSteiner(big, too_many).status().IsInvalidArgument());
}

TEST(ExactSteinerTest, DisconnectedTerminalsFail) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  EXPECT_EQ(SolveExactSteiner(g, {0, 2}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExactSteinerTest, NeverWorseThanHeuristics) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedGraph g = RandomConnected(&rng, 12, 10);
    auto terminals = RandomTerminals(&rng, 12, 4);
    auto exact = SolveExactSteiner(g, terminals);
    auto kmb = SolveNewst(g, terminals);
    auto tm = SolveTakahashiMatsuyama(g, terminals);
    ASSERT_TRUE(exact.ok() && kmb.ok() && tm.ok());
    EXPECT_LE(exact->total_cost, kmb->total_cost + 1e-9) << trial;
    EXPECT_LE(exact->total_cost, tm->total_cost + 1e-9) << trial;
    // KMB guarantee relative to the true optimum.
    EXPECT_LE(kmb->total_cost, 2.0 * exact->total_cost + 1e-9) << trial;
    EXPECT_LE(tm->total_cost, 2.0 * exact->total_cost + 1e-9) << trial;
  }
}

TEST(ExactSteinerTest, AblationFlagsRespected) {
  Rng rng(778);
  WeightedGraph g = RandomConnected(&rng, 10, 8);
  auto terminals = RandomTerminals(&rng, 10, 3);
  for (bool node_weights : {true, false}) {
    for (bool edge_weights : {true, false}) {
      NewstOptions options;
      options.use_node_weights = node_weights;
      options.use_edge_weights = edge_weights;
      auto exact = SolveExactSteiner(g, terminals, options);
      auto kmb = SolveNewst(g, terminals, options);
      ASSERT_TRUE(exact.ok() && kmb.ok());
      EXPECT_LE(exact->total_cost, kmb->total_cost + 1e-9);
    }
  }
}

TEST(TakahashiTest, SingleAndTwoTerminals) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  auto one = SolveTakahashiMatsuyama(g, {1});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->nodes, (std::vector<uint32_t>{1}));
  auto two = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->nodes, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(two->edges.size(), 2u);
}

TEST(TakahashiTest, AvoidsHeavyNodes) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(0, 3, 1.2);
  g.AddEdge(3, 2, 1.2);
  g.SetNodeWeight(1, 50.0);
  auto r = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::find(r->nodes.begin(), r->nodes.end(), 3) !=
              r->nodes.end());
}

TEST(TakahashiTest, UnreachableTerminalsReported) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  auto r = SolveTakahashiMatsuyama(g, {0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->unreachable_terminals, (std::vector<uint32_t>{2}));
}

TEST(TakahashiTest, CostMatchesTreeCost) {
  Rng rng(779);
  WeightedGraph g = RandomConnected(&rng, 15, 12);
  auto terminals = RandomTerminals(&rng, 15, 5);
  auto r = SolveTakahashiMatsuyama(g, terminals);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->total_cost, g.TreeCost(r->edges), 1e-9);
}

}  // namespace
}  // namespace rpg::steiner
