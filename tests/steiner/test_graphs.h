#ifndef RPG_TESTS_STEINER_TEST_GRAPHS_H_
#define RPG_TESTS_STEINER_TEST_GRAPHS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {

/// Random connected graph: a ring (guaranteeing connectivity) plus
/// `extra_edges` random chords, with random node weights. Shared by the
/// Steiner solver test suites.
inline WeightedGraph RandomConnected(Rng* rng, uint32_t n, int extra_edges) {
  WeightedGraphBuilder b(n);
  for (uint32_t v = 0; v < n; ++v) {
    b.SetNodeWeight(v, rng->UniformDouble(0.0, 2.0));
  }
  for (uint32_t i = 0; i < n; ++i) {
    b.AddEdge(i, (i + 1) % n, rng->UniformDouble(0.2, 3.0));
  }
  for (int e = 0; e < extra_edges; ++e) {
    uint32_t u = static_cast<uint32_t>(rng->NextBounded(n));
    uint32_t v = static_cast<uint32_t>(rng->NextBounded(n));
    if (u != v) b.AddEdge(u, v, rng->UniformDouble(0.2, 3.0));
  }
  return b.Build();
}

/// k distinct random terminals in [0, n).
inline std::vector<uint32_t> RandomTerminals(Rng* rng, uint32_t n,
                                             uint32_t k) {
  std::vector<uint32_t> terminals;
  for (uint64_t t : rng->SampleWithoutReplacement(n, k)) {
    terminals.push_back(static_cast<uint32_t>(t));
  }
  return terminals;
}

}  // namespace rpg::steiner

#endif  // RPG_TESTS_STEINER_TEST_GRAPHS_H_
