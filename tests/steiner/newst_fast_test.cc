// Closure-mode equivalence suite (ISSUE 1): the Mehlhorn single-pass
// closure must stay within the KMB 2(1 - 1/l) bound of the true optimum,
// agree with the classic per-terminal closure wherever Voronoi regions
// are unambiguous, and report identical unreachable-terminal sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "steiner/exact.h"
#include "steiner/newst.h"
#include "steiner/takahashi.h"
#include "steiner/weighted_graph.h"
#include "test_graphs.h"

namespace rpg::steiner {
namespace {

/// Two islands of `half` nodes each (rings), no edge between them.
WeightedGraph TwoIslands(Rng* rng, uint32_t half) {
  WeightedGraphBuilder b(2 * half);
  for (uint32_t i = 0; i < half; ++i) {
    b.AddEdge(i, (i + 1) % half, rng->UniformDouble(0.2, 2.0));
    b.AddEdge(half + i, half + (i + 1) % half, rng->UniformDouble(0.2, 2.0));
  }
  return b.Build();
}

NewstOptions Mode(ClosureMode m) {
  NewstOptions o;
  o.closure_mode = m;
  return o;
}

TEST(NewstFastTest, WithinKmbBoundOfExactOptimum) {
  // SolveNewstFast vs the Dreyfus-Wagner optimum on randomized graphs:
  // the Mehlhorn construction must keep the 2(1 - 1/l) <= 2x guarantee.
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    WeightedGraph g = RandomConnected(&rng, 14, 12);
    auto terminals = RandomTerminals(&rng, 14, 5);
    auto exact = SolveExactSteiner(g, terminals);
    auto fast = SolveNewstFast(g, terminals);
    ASSERT_TRUE(exact.ok() && fast.ok());
    EXPECT_GE(fast->total_cost, exact->total_cost - 1e-9) << "trial " << trial;
    EXPECT_LE(fast->total_cost, 2.0 * exact->total_cost + 1e-9)
        << "trial " << trial;
  }
}

TEST(NewstFastTest, ClassicAndFastMutuallyBounded) {
  // Both modes are >= OPT and <= 2 OPT, so each is within 2x of the
  // other — on any instance, not just small ones.
  Rng rng(2025);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedGraph g = RandomConnected(&rng, 60, 80);
    auto terminals = RandomTerminals(&rng, 60, 12);
    auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
    ASSERT_TRUE(classic.ok() && fast.ok());
    EXPECT_LE(fast->total_cost, 2.0 * classic->total_cost + 1e-9);
    EXPECT_LE(classic->total_cost, 2.0 * fast->total_cost + 1e-9);
  }
}

TEST(NewstFastTest, ModesAgreeWhenVoronoiRegionsUnambiguous) {
  // A chain with strictly increasing edge costs: every node has a unique
  // nearest terminal, so both closures select the same paths and the
  // trees have identical cost.
  WeightedGraphBuilder b(7);
  double costs[] = {0.5, 0.7, 1.1, 1.3, 1.7, 1.9};
  for (uint32_t i = 0; i < 6; ++i) b.AddEdge(i, i + 1, costs[i]);
  for (uint32_t v = 0; v < 7; ++v) b.SetNodeWeight(v, 0.1 * v);
  WeightedGraph g = b.Build();
  for (std::vector<uint32_t> terminals :
       {std::vector<uint32_t>{0, 6}, std::vector<uint32_t>{0, 3, 6},
        std::vector<uint32_t>{1, 2, 5}}) {
    auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
    ASSERT_TRUE(classic.ok() && fast.ok());
    EXPECT_NEAR(classic->total_cost, fast->total_cost, 1e-9);
    EXPECT_EQ(classic->nodes, fast->nodes);
    EXPECT_EQ(classic->edges, fast->edges);
  }
}

TEST(NewstFastTest, ModesAgreeOnStar) {
  WeightedGraphBuilder b(5);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.5);
  b.AddEdge(0, 3, 2.0);
  b.AddEdge(0, 4, 2.5);
  WeightedGraph g = b.Build();
  auto classic = SolveNewst(g, {1, 2, 3, 4}, Mode(ClosureMode::kClassic));
  auto fast = SolveNewst(g, {1, 2, 3, 4}, Mode(ClosureMode::kMehlhorn));
  ASSERT_TRUE(classic.ok() && fast.ok());
  EXPECT_NEAR(classic->total_cost, fast->total_cost, 1e-9);
  EXPECT_EQ(classic->nodes, fast->nodes);
}

TEST(NewstFastTest, UnreachableTerminalsParityRandomized) {
  // Regression: both closure modes (and Takahashi-Matsuyama) must report
  // the same unreachable set on disconnected graphs.
  Rng rng(2026);
  for (int trial = 0; trial < 15; ++trial) {
    const uint32_t half = 6;
    WeightedGraph g = TwoIslands(&rng, half);
    // Terminals straddle the two islands; terms[0] decides the "main"
    // component, everything on the other island must be reported.
    std::vector<uint32_t> terminals = {0, 2, 4, half, half + 3};
    auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
    auto tm = SolveTakahashiMatsuyama(g, terminals);
    ASSERT_TRUE(classic.ok() && fast.ok() && tm.ok());
    EXPECT_EQ(classic->unreachable_terminals,
              (std::vector<uint32_t>{half, half + 3}));
    EXPECT_EQ(fast->unreachable_terminals, classic->unreachable_terminals);
    EXPECT_EQ(tm->unreachable_terminals, classic->unreachable_terminals);
    // Both modes still span the reachable islands as a forest.
    EXPECT_LE(fast->total_cost, 2.0 * classic->total_cost + 1e-9);
    EXPECT_LE(classic->total_cost, 2.0 * fast->total_cost + 1e-9);
  }
}

TEST(NewstFastTest, AblationFlagsWorkInFastMode) {
  Rng rng(2027);
  WeightedGraph g = RandomConnected(&rng, 12, 10);
  auto terminals = RandomTerminals(&rng, 12, 4);
  for (bool node_weights : {true, false}) {
    for (bool edge_weights : {true, false}) {
      NewstOptions options = Mode(ClosureMode::kMehlhorn);
      options.use_node_weights = node_weights;
      options.use_edge_weights = edge_weights;
      auto exact = SolveExactSteiner(g, terminals, options);
      auto fast = SolveNewst(g, terminals, options);
      ASSERT_TRUE(exact.ok() && fast.ok());
      EXPECT_LE(exact->total_cost, fast->total_cost + 1e-9);
      EXPECT_LE(fast->total_cost, 2.0 * exact->total_cost + 1e-9);
    }
  }
}

TEST(NewstFastTest, FastModeDoesAsymptoticallyLessWork) {
  // On a |S| = 16 instance the classic closure runs 16 Dijkstras and
  // settles ~16x the nodes; the Mehlhorn closure settles each node once.
  Rng rng(2028);
  const uint32_t n = 400;
  WeightedGraph g = RandomConnected(&rng, n, 800);
  auto terminals = RandomTerminals(&rng, n, 16);
  auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
  auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
  ASSERT_TRUE(classic.ok() && fast.ok());
  EXPECT_EQ(classic->stats.dijkstra_runs, 16u);
  EXPECT_EQ(fast->stats.dijkstra_runs, 1u);
  EXPECT_LE(fast->stats.nodes_settled, n);
  EXPECT_GE(classic->stats.nodes_settled, 8u * fast->stats.nodes_settled);
  EXPECT_GT(classic->stats.heap_pushes, fast->stats.heap_pushes);
  // The Mehlhorn closure graph is also far sparser than all-pairs.
  EXPECT_LE(fast->stats.closure_edges, classic->stats.closure_edges * 2);
}

TEST(NewstFastTest, TotalCostMatchesTreeCostInFastMode) {
  Rng rng(2029);
  for (int trial = 0; trial < 10; ++trial) {
    WeightedGraph g = RandomConnected(&rng, 30, 40);
    auto terminals = RandomTerminals(&rng, 30, 8);
    auto fast = SolveNewstFast(g, terminals);
    ASSERT_TRUE(fast.ok());
    EXPECT_NEAR(fast->total_cost, g.TreeCost(fast->edges), 1e-9);
    EXPECT_TRUE(fast->unreachable_terminals.empty());
  }
}

}  // namespace
}  // namespace rpg::steiner
