#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/rng.h"
#include "steiner/dijkstra.h"
#include "steiner/mst.h"
#include "steiner/newst.h"
#include "steiner/weighted_graph.h"

namespace rpg::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --------------------------------------------------------- WeightedGraph

TEST(WeightedGraphTest, EdgesAreUndirected) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  ASSERT_EQ(g.Neighbors(1).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].first, 1u);
  EXPECT_EQ(g.Neighbors(1)[0].first, 0u);
}

TEST(WeightedGraphTest, EdgeCostPicksCheapestParallel) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 1, 2.0);
  WeightedGraph g = b.Build();
  EXPECT_DOUBLE_EQ(g.EdgeCost(0, 1), 2.0);
  EXPECT_EQ(g.EdgeCost(0, 0), kInf);
}

TEST(WeightedGraphTest, NeighborsSortedByTarget) {
  WeightedGraphBuilder b(5);
  b.AddEdge(2, 4, 1.0);
  b.AddEdge(2, 0, 3.0);
  b.AddEdge(2, 3, 2.0);
  b.AddEdge(2, 1, 4.0);
  WeightedGraph g = b.Build();
  ASSERT_EQ(g.Neighbors(2).size(), 4u);
  std::vector<uint32_t> targets;
  for (const auto& [v, c] : g.Neighbors(2)) targets.push_back(v);
  EXPECT_EQ(targets, (std::vector<uint32_t>{0, 1, 3, 4}));
  // CSR spans expose the same data structure-of-arrays style.
  EXPECT_EQ(g.Targets(2).size(), 4u);
  EXPECT_EQ(g.Costs(2).size(), 4u);
  EXPECT_EQ(g.Degree(2), 4u);
  EXPECT_DOUBLE_EQ(g.EdgeCost(2, 3), 2.0);
  EXPECT_EQ(g.EdgeCost(2, 2), kInf);
}

TEST(WeightedGraphTest, TreeCostSumsEdgesAndNodes) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  b.SetNodeWeight(0, 10.0);
  b.SetNodeWeight(1, 20.0);
  b.SetNodeWeight(2, 30.0);
  WeightedGraph g = b.Build();
  EXPECT_DOUBLE_EQ(g.TreeCost({{0, 1}, {1, 2}}), 1.0 + 2.0 + 60.0);
  EXPECT_DOUBLE_EQ(g.TreeCost({{0, 1}}), 1.0 + 30.0);
  EXPECT_DOUBLE_EQ(g.TreeCost({}), 0.0);
}

TEST(WeightedGraphTest, UnitCostCopyKeepsTopology) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 7.5);
  b.AddEdge(1, 2, 0.25);
  b.SetNodeWeight(1, 4.0);
  WeightedGraph g = b.Build();
  WeightedGraph unit = UnitCostCopy(g);
  EXPECT_EQ(unit.num_nodes(), 3u);
  EXPECT_EQ(unit.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(unit.EdgeCost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(unit.EdgeCost(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(unit.NodeWeight(1), 4.0);
  EXPECT_EQ(unit.EdgeCost(0, 2), kInf);
}

// -------------------------------------------------------------- Dijkstra

WeightedGraph Chain(const std::vector<double>& edge_costs,
                    const std::vector<double>& node_weights) {
  WeightedGraphBuilder b(node_weights.size());
  for (size_t i = 0; i < node_weights.size(); ++i) {
    b.SetNodeWeight(static_cast<uint32_t>(i), node_weights[i]);
  }
  for (size_t i = 0; i < edge_costs.size(); ++i) {
    b.AddEdge(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1),
              edge_costs[i]);
  }
  return b.Build();
}

TEST(DijkstraTest, ChainDistancesIncludeNodeWeights) {
  WeightedGraph g = Chain({1.0, 2.0}, {100.0, 5.0, 7.0});
  ShortestPathTree t = Dijkstra(g, 0);
  // Source weight never counted; each subsequent node's weight is.
  EXPECT_DOUBLE_EQ(t.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(t.dist[1], 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(t.dist[2], 1.0 + 5.0 + 2.0 + 7.0);
}

TEST(DijkstraTest, NodeWeightsCanBeDisabled) {
  WeightedGraph g = Chain({1.0, 2.0}, {100.0, 5.0, 7.0});
  ShortestPathTree t = Dijkstra(g, 0, /*include_node_weights=*/false);
  EXPECT_DOUBLE_EQ(t.dist[2], 3.0);
}

TEST(DijkstraTest, HeavyNodeIsRoutedAround) {
  // 0-1-3 via cheap edges but heavy node 1; 0-2-3 longer edges, light node.
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 3, 1.0);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(2, 3, 2.0);
  b.SetNodeWeight(1, 50.0);
  b.SetNodeWeight(2, 1.0);
  WeightedGraph g = b.Build();
  ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(t.PathTo(3), (std::vector<uint32_t>{0, 2, 3}));
}

TEST(DijkstraTest, UnreachableNodes) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(t.dist[2], kInf);
  EXPECT_TRUE(t.PathTo(2).empty());
}

TEST(DijkstraTest, PathToSelf) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(t.PathTo(0), (std::vector<uint32_t>{0}));
}

TEST(DijkstraTest, InvalidSourceYieldsAllUnreachable) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  ShortestPathTree t = Dijkstra(g, 7);
  EXPECT_EQ(t.dist[0], kInf);
}

TEST(DijkstraTest, StatsCountWork) {
  WeightedGraph g = Chain({1.0, 2.0, 3.0}, {0.0, 0.0, 0.0, 0.0});
  SteinerStats stats;
  Dijkstra(g, 0, true, &stats);
  EXPECT_EQ(stats.nodes_settled, 4u);
  EXPECT_GE(stats.heap_pushes, 4u);
  EXPECT_EQ(stats.dijkstra_runs, 1u);
}

TEST(DijkstraTest, MatchesBruteForceOnRandomGraphs) {
  // Property check: Dijkstra distance equals Bellman-Ford distance.
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 12;
    WeightedGraphBuilder b(n);
    for (uint32_t v = 0; v < n; ++v) {
      b.SetNodeWeight(v, rng.UniformDouble(0.0, 5.0));
    }
    std::set<std::pair<uint32_t, uint32_t>> used;
    for (int e = 0; e < 25; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
      if (u == v) continue;
      if (!used.insert({std::min(u, v), std::max(u, v)}).second) continue;
      b.AddEdge(u, v, rng.UniformDouble(0.1, 4.0));
    }
    WeightedGraph g = b.Build();
    ShortestPathTree t = Dijkstra(g, 0);
    // Bellman-Ford over the same relaxation rule.
    std::vector<double> dist(n, kInf);
    dist[0] = 0.0;
    for (uint32_t round = 0; round < n; ++round) {
      for (uint32_t u = 0; u < n; ++u) {
        if (dist[u] == kInf) continue;
        for (const auto& [v, c] : g.Neighbors(u)) {
          double nd = dist[u] + c + g.NodeWeight(v);
          if (nd < dist[v]) dist[v] = nd;
        }
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (dist[v] == kInf) {
        EXPECT_EQ(t.dist[v], kInf);
      } else {
        EXPECT_NEAR(t.dist[v], dist[v], 1e-9) << "trial " << trial;
      }
    }
  }
}

// -------------------------------------------------- MultiSourceDijkstra

TEST(MultiSourceDijkstraTest, VoronoiCellsAndDistances) {
  // 0 - 1 - 2 - 3 - 4 chain, sources {0, 4}.
  WeightedGraph g = Chain({1.0, 1.0, 1.0, 1.0}, {0, 0, 0, 0, 0});
  VoronoiPartition vp = MultiSourceDijkstra(g, {0, 4}, false);
  EXPECT_DOUBLE_EQ(vp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(vp.dist[4], 0.0);
  EXPECT_EQ(vp.source[0], 0u);
  EXPECT_EQ(vp.source[4], 1u);
  EXPECT_EQ(vp.source[1], 0u);
  EXPECT_EQ(vp.source[3], 1u);
  EXPECT_DOUBLE_EQ(vp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(vp.dist[3], 1.0);
  // Node 2 is equidistant; it belongs to exactly one of the two cells.
  EXPECT_DOUBLE_EQ(vp.dist[2], 2.0);
  EXPECT_TRUE(vp.source[2] == 0u || vp.source[2] == 1u);
}

TEST(MultiSourceDijkstraTest, MatchesPerSourceMinimum) {
  Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t n = 14;
    WeightedGraphBuilder b(n);
    for (uint32_t v = 0; v < n; ++v) {
      b.SetNodeWeight(v, rng.UniformDouble(0.0, 2.0));
    }
    for (uint32_t i = 0; i < n; ++i) {
      b.AddEdge(i, (i + 1) % n, rng.UniformDouble(0.2, 3.0));
    }
    for (int e = 0; e < 10; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
      if (u != v) b.AddEdge(u, v, rng.UniformDouble(0.2, 3.0));
    }
    WeightedGraph g = b.Build();
    std::vector<uint32_t> sources = {1, 5, 9};
    VoronoiPartition vp = MultiSourceDijkstra(g, sources, true);
    std::vector<ShortestPathTree> trees;
    for (uint32_t s : sources) trees.push_back(Dijkstra(g, s, true));
    for (uint32_t v = 0; v < n; ++v) {
      double best = kInf;
      for (const auto& t : trees) best = std::min(best, t.dist[v]);
      EXPECT_NEAR(vp.dist[v], best, 1e-9) << "node " << v;
      // The owning cell achieves the minimum distance.
      ASSERT_NE(vp.source[v], UINT32_MAX);
      EXPECT_NEAR(trees[vp.source[v]].dist[v], best, 1e-9);
    }
  }
}

TEST(MultiSourceDijkstraTest, UnreachableAndPathFromSource) {
  WeightedGraphBuilder b(5);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  // 3, 4 disconnected island.
  b.AddEdge(3, 4, 1.0);
  WeightedGraph g = b.Build();
  VoronoiPartition vp = MultiSourceDijkstra(g, {0}, false);
  EXPECT_EQ(vp.source[3], UINT32_MAX);
  EXPECT_TRUE(vp.PathFromSource(3).empty());
  EXPECT_EQ(vp.PathFromSource(2), (std::vector<uint32_t>{0, 1, 2}));
}

// ------------------------------------------------------------------- MST

TEST(DisjointSetsTest, UnionFindBasics) {
  DisjointSets s(4);
  EXPECT_NE(s.Find(0), s.Find(1));
  EXPECT_TRUE(s.Union(0, 1));
  EXPECT_FALSE(s.Union(0, 1));
  EXPECT_EQ(s.Find(0), s.Find(1));
  EXPECT_TRUE(s.Union(1, 2));
  EXPECT_EQ(s.Find(0), s.Find(2));
  EXPECT_NE(s.Find(0), s.Find(3));
}

TEST(KruskalTest, PicksCheapestSpanningEdges) {
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 5.0}};
  auto mst = KruskalMst(3, edges);
  ASSERT_EQ(mst.size(), 2u);
  double total = 0.0;
  for (const auto& e : mst) total += e.cost;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(KruskalTest, DisconnectedYieldsForest) {
  std::vector<Edge> edges = {{0, 1, 1.0}, {2, 3, 1.0}};
  auto mst = KruskalMst(4, edges);
  EXPECT_EQ(mst.size(), 2u);
}

TEST(KruskalTest, EmptyInput) {
  EXPECT_TRUE(KruskalMst(3, {}).empty());
}

TEST(PrimTest, MatchesKruskalCostOnRandomGraphs) {
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    const uint32_t n = 10;
    WeightedGraphBuilder b(n);
    std::vector<Edge> edges;
    // Ring + chords guarantees connectivity.
    for (uint32_t i = 0; i < n; ++i) {
      double c = rng.UniformDouble(0.1, 3.0);
      b.AddEdge(i, (i + 1) % n, c);
      edges.push_back({i, (i + 1) % n, c});
    }
    for (int e = 0; e < 8; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
      if (u == v) continue;
      double c = rng.UniformDouble(0.1, 3.0);
      b.AddEdge(u, v, c);
      edges.push_back({u, v, c});
    }
    WeightedGraph g = b.Build();
    auto prim = PrimMst(g, 0);
    auto kruskal = KruskalMst(n, edges);
    ASSERT_EQ(prim.size(), n - 1);
    ASSERT_EQ(kruskal.size(), n - 1);
    double prim_cost = 0.0, kruskal_cost = 0.0;
    for (const auto& e : prim) prim_cost += e.cost;
    for (const auto& e : kruskal) kruskal_cost += e.cost;
    EXPECT_NEAR(prim_cost, kruskal_cost, 1e-9);
  }
}

TEST(PrimTest, CoversOnlyStartComponent) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(PrimMst(g, 0).size(), 1u);
}

// ----------------------------------------------------------------- NEWST
//
// Every NEWST behaviour test runs in BOTH closure modes: the Mehlhorn
// single-pass construction is the default hot path, the classic
// per-terminal closure the verification mode — they must agree on all of
// these deterministic instances.

class NewstTest : public ::testing::TestWithParam<ClosureMode> {
 protected:
  NewstOptions Options() const {
    NewstOptions o;
    o.closure_mode = GetParam();
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(BothClosureModes, NewstTest,
                         ::testing::Values(ClosureMode::kMehlhorn,
                                           ClosureMode::kClassic),
                         [](const auto& info) {
                           return info.param == ClosureMode::kMehlhorn
                                      ? "Mehlhorn"
                                      : "Classic";
                         });

/// Validates that a SteinerResult is a forest spanning the terminals.
void CheckTreeInvariants(const WeightedGraph& g, const SteinerResult& r,
                         const std::vector<uint32_t>& terminals) {
  std::set<uint32_t> nodes(r.nodes.begin(), r.nodes.end());
  for (uint32_t t : terminals) {
    EXPECT_TRUE(nodes.contains(t)) << "terminal " << t << " missing";
  }
  // Every edge exists in g and connects tree nodes.
  for (const auto& [u, v] : r.edges) {
    EXPECT_LT(g.EdgeCost(u, v), kInf);
    EXPECT_TRUE(nodes.contains(u));
    EXPECT_TRUE(nodes.contains(v));
  }
  // Acyclic: |E| <= |V| - #components, verified via union-find.
  DisjointSets sets(g.num_nodes());
  for (const auto& [u, v] : r.edges) {
    EXPECT_TRUE(sets.Union(u, v)) << "cycle through " << u << "-" << v;
  }
}

TEST_P(NewstTest, SingleTerminalIsTrivial) {
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {1}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(r->edges.empty());
}

TEST_P(NewstTest, TwoTerminalsUseShortestPath) {
  // 0 - 1 - 2 with cheap middle vs direct expensive edge.
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(0, 2, 10.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 2}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(r->edges.size(), 2u);
  CheckTreeInvariants(g, r.value(), {0, 2});
}

TEST_P(NewstTest, NodeWeightSteersSteinerPoint) {
  // Terminals 0, 2; two possible connectors: 1 (heavy) and 3 (light).
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(0, 3, 1.0);
  b.AddEdge(3, 2, 1.0);
  b.SetNodeWeight(1, 100.0);
  b.SetNodeWeight(3, 0.5);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 2}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::find(r->nodes.begin(), r->nodes.end(), 3) != r->nodes.end());
  EXPECT_TRUE(std::find(r->nodes.begin(), r->nodes.end(), 1) == r->nodes.end());
}

TEST_P(NewstTest, DisablingNodeWeightsChangesChoice) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(0, 3, 1.5);
  b.AddEdge(3, 2, 1.5);
  b.SetNodeWeight(1, 100.0);
  WeightedGraph g = b.Build();
  // With node weights: route via 3. Without: via 1 (cheaper edges).
  auto with = SolveNewst(g, {0, 2}, Options());
  NewstOptions options = Options();
  options.use_node_weights = false;
  auto without = SolveNewst(g, {0, 2}, options);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_TRUE(std::find(with->nodes.begin(), with->nodes.end(), 3) !=
              with->nodes.end());
  EXPECT_TRUE(std::find(without->nodes.begin(), without->nodes.end(), 1) !=
              without->nodes.end());
}

TEST_P(NewstTest, DisablingEdgeWeightsUsesFewestHops) {
  // Path 0-1-2 has 2 cheap hops; direct 0-2 is expensive but 1 hop.
  WeightedGraphBuilder b(3);
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(1, 2, 0.1);
  b.AddEdge(0, 2, 9.0);
  WeightedGraph g = b.Build();
  NewstOptions options = Options();
  options.use_edge_weights = false;
  auto r = SolveNewst(g, {0, 2}, options);
  ASSERT_TRUE(r.ok());
  // With unit costs the direct edge (1 hop) wins.
  EXPECT_EQ(r->nodes, (std::vector<uint32_t>{0, 2}));
}

TEST_P(NewstTest, StarTerminalsShareTheHub) {
  // Terminals 1, 2, 3 all attach to hub 0.
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(0, 3, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {1, 2, 3}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes.size(), 4u);
  EXPECT_EQ(r->edges.size(), 3u);
  CheckTreeInvariants(g, r.value(), {1, 2, 3});
}

TEST_P(NewstTest, PrunesNonTerminalLeaves) {
  // A dangling high-value path must not survive in the tree.
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(1, 3, 0.01);  // tempting but dangling
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 2}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::find(r->nodes.begin(), r->nodes.end(), 3) == r->nodes.end());
}

TEST_P(NewstTest, DuplicateTerminalsCollapse) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 0, 1, 1}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes.size(), 2u);
  EXPECT_EQ(r->edges.size(), 1u);
}

TEST_P(NewstTest, EmptyTerminalsRejected) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_TRUE(SolveNewst(g, {}, Options()).status().IsInvalidArgument());
}

TEST_P(NewstTest, OutOfRangeTerminalRejected) {
  WeightedGraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_TRUE(SolveNewst(g, {5}, Options()).status().IsInvalidArgument());
}

TEST_P(NewstTest, DisconnectedTerminalsReportUnreachable) {
  WeightedGraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 1, 2, 3}, Options());
  ASSERT_TRUE(r.ok());
  // Forest spans both islands; terminals outside component of 0 reported.
  EXPECT_EQ(r->edges.size(), 2u);
  EXPECT_EQ(r->unreachable_terminals, (std::vector<uint32_t>{2, 3}));
}

TEST_P(NewstTest, TotalCostMatchesTreeCost) {
  WeightedGraphBuilder b(5);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  b.AddEdge(2, 3, 1.5);
  b.AddEdge(3, 4, 0.5);
  b.AddEdge(0, 4, 10.0);
  for (uint32_t v = 0; v < 5; ++v) b.SetNodeWeight(v, 0.25 * (v + 1));
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 2, 4}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->total_cost, g.TreeCost(r->edges), 1e-9);
}

TEST_P(NewstTest, StatsReflectClosureWork) {
  WeightedGraphBuilder b(6);
  for (uint32_t i = 0; i + 1 < 6; ++i) b.AddEdge(i, i + 1, 1.0);
  WeightedGraph g = b.Build();
  auto r = SolveNewst(g, {0, 2, 5}, Options());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.nodes_settled, 0u);
  EXPECT_GT(r->stats.heap_pushes, 0u);
  EXPECT_GT(r->stats.closure_edges, 0u);
  EXPECT_GE(r->stats.closure_seconds, 0.0);
  // One multi-source run vs one per terminal.
  if (GetParam() == ClosureMode::kMehlhorn) {
    EXPECT_EQ(r->stats.dijkstra_runs, 1u);
  } else {
    EXPECT_EQ(r->stats.dijkstra_runs, 3u);
  }
}

/// Brute-force optimal Steiner tree by enumerating Steiner-node subsets
/// and MSTs over the induced metric (exact for small n via edge subsets).
double BruteForceSteinerCost(const WeightedGraph& g,
                             const std::vector<uint32_t>& terminals,
                             bool node_weights) {
  const uint32_t n = static_cast<uint32_t>(g.num_nodes());
  double best = kInf;
  // Enumerate every superset of terminals.
  std::set<uint32_t> term_set(terminals.begin(), terminals.end());
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool contains_all = true;
    for (uint32_t t : term_set) {
      if (!(mask & (1u << t))) {
        contains_all = false;
        break;
      }
    }
    if (!contains_all) continue;
    // MST over the induced subgraph; skip if disconnected.
    std::vector<uint32_t> nodes;
    for (uint32_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) nodes.push_back(v);
    }
    std::map<uint32_t, uint32_t> compact;
    for (uint32_t i = 0; i < nodes.size(); ++i) compact[nodes[i]] = i;
    std::vector<Edge> edges;
    for (uint32_t u : nodes) {
      for (const auto& [v, c] : g.Neighbors(u)) {
        if (u < v && compact.contains(v)) {
          edges.push_back({compact[u], compact[v], c});
        }
      }
    }
    auto mst = KruskalMst(nodes.size(), edges);
    if (mst.size() != nodes.size() - 1) continue;  // disconnected
    double cost = 0.0;
    for (const auto& e : mst) cost += e.cost;
    if (node_weights) {
      for (uint32_t v : nodes) cost += g.NodeWeight(v);
    }
    best = std::min(best, cost);
  }
  return best;
}

TEST_P(NewstTest, WithinKmbBoundOfOptimumOnRandomGraphs) {
  Rng rng(606);
  int solved = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const uint32_t n = 9;
    WeightedGraphBuilder b(n);
    for (uint32_t v = 0; v < n; ++v) {
      b.SetNodeWeight(v, rng.UniformDouble(0.0, 2.0));
    }
    // Ring for connectivity + random chords.
    for (uint32_t i = 0; i < n; ++i) {
      b.AddEdge(i, (i + 1) % n, rng.UniformDouble(0.2, 3.0));
    }
    for (int e = 0; e < 6; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
      if (u != v) b.AddEdge(u, v, rng.UniformDouble(0.2, 3.0));
    }
    WeightedGraph g = b.Build();
    std::vector<uint32_t> terminals;
    for (uint64_t t : rng.SampleWithoutReplacement(n, 3)) {
      terminals.push_back(static_cast<uint32_t>(t));
    }
    auto r = SolveNewst(g, terminals, Options());
    ASSERT_TRUE(r.ok());
    CheckTreeInvariants(g, r.value(), terminals);
    double opt = BruteForceSteinerCost(g, terminals, /*node_weights=*/true);
    ASSERT_LT(opt, kInf);
    // KMB guarantee: within 2(1 - 1/l) <= 2x of optimal.
    EXPECT_LE(r->total_cost, 2.0 * opt + 1e-9) << "trial " << trial;
    EXPECT_GE(r->total_cost, opt - 1e-9) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 25);
}

}  // namespace
}  // namespace rpg::steiner
