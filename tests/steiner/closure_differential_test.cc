// Differential harness for the two metric-closure constructions
// (ROADMAP item 5 follow-up): sweep randomized graphs x terminal-set
// sizes well past the exact-solver range and hold the Mehlhorn
// single-pass closure and the classic per-terminal closure to each
// other — per-instance cross bounds from the shared 2(1 - 1/l)
// guarantee, an aggregate tree-cost delta bound (the fast path was
// adopted on a measured <1% mean delta; this gate keeps it from
// silently regressing), identical unreachable-terminal behavior, and
// TreeCost-recompute consistency for every tree either mode emits.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/rng.h"
#include "steiner/newst.h"
#include "steiner/weighted_graph.h"
#include "test_graphs.h"

namespace rpg::steiner {
namespace {

NewstOptions Mode(ClosureMode m) {
  NewstOptions o;
  o.closure_mode = m;
  return o;
}

/// Structural sanity any emitted tree must satisfy, regardless of mode.
void ExpectValidTree(const WeightedGraph& g, const SteinerResult& r,
                     const std::vector<uint32_t>& terminals) {
  EXPECT_TRUE(std::is_sorted(r.nodes.begin(), r.nodes.end()));
  // A forest with f components has nodes - f edges; when every terminal
  // sits in one component this is exactly nodes - 1.
  if (!r.nodes.empty()) {
    EXPECT_LE(r.edges.size(), r.nodes.size() - 1);
    if (r.unreachable_terminals.empty()) {
      EXPECT_EQ(r.edges.size(), r.nodes.size() - 1);
    }
  }
  for (const auto& [u, v] : r.edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(std::binary_search(r.nodes.begin(), r.nodes.end(), u));
    EXPECT_TRUE(std::binary_search(r.nodes.begin(), r.nodes.end(), v));
  }
  // Every terminal is spanned by some component tree of the forest —
  // "unreachable" only marks those outside the first terminal's
  // component, not ones missing from the result.
  for (uint32_t t : terminals) {
    EXPECT_TRUE(std::binary_search(r.nodes.begin(), r.nodes.end(), t))
        << "terminal " << t;
  }
  // TreeCost counts node weights of edge-incident nodes, so it only
  // reproduces total_cost for trees with at least one edge.
  if (!r.edges.empty()) {
    EXPECT_NEAR(r.total_cost, g.TreeCost(r.edges), 1e-9);
  }
}

TEST(ClosureDifferentialTest, RandomSweepCostsMutuallyBounded) {
  // 3 graph sizes x 3 terminal-set sizes x trials. Aggregate the
  // relative cost delta across the sweep: individual instances may
  // disagree (different shortest-path tie-breaks), but on average the
  // two constructions must stay within a few percent of each other.
  Rng rng(20240808);
  double sum_rel_delta = 0.0;
  int instances = 0;
  for (uint32_t n : {24u, 60u, 150u}) {
    for (uint32_t k : {3u, 6u, 12u}) {
      for (int trial = 0; trial < 8; ++trial) {
        WeightedGraph g = RandomConnected(&rng, n, static_cast<int>(n));
        auto terminals = RandomTerminals(&rng, n, k);
        auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
        auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
        ASSERT_TRUE(classic.ok()) << classic.status().ToString();
        ASSERT_TRUE(fast.ok()) << fast.status().ToString();
        ExpectValidTree(g, classic.value(), terminals);
        ExpectValidTree(g, fast.value(), terminals);
        // Connected graph: nothing may be dropped by either mode.
        EXPECT_TRUE(classic->unreachable_terminals.empty());
        EXPECT_TRUE(fast->unreachable_terminals.empty());
        // Both are within 2 OPT, so within 2x of each other.
        EXPECT_LE(fast->total_cost, 2.0 * classic->total_cost + 1e-9);
        EXPECT_LE(classic->total_cost, 2.0 * fast->total_cost + 1e-9);
        sum_rel_delta += std::abs(fast->total_cost - classic->total_cost) /
                         classic->total_cost;
        ++instances;
      }
    }
  }
  // Mean relative delta across the sweep. Measured ~0.1-1%; 5% leaves
  // headroom for RNG drift while still catching a broken closure.
  EXPECT_LT(sum_rel_delta / instances, 0.05);
}

TEST(ClosureDifferentialTest, SingleTerminalAndFullTerminalAgreeExactly) {
  Rng rng(31);
  WeightedGraph g = RandomConnected(&rng, 40, 50);
  {
    // One terminal: the tree is that node alone in both modes.
    auto classic = SolveNewst(g, {7}, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, {7}, Mode(ClosureMode::kMehlhorn));
    ASSERT_TRUE(classic.ok() && fast.ok());
    EXPECT_EQ(classic->nodes, fast->nodes);
    EXPECT_EQ(classic->edges, fast->edges);
    EXPECT_DOUBLE_EQ(classic->total_cost, fast->total_cost);
  }
  {
    // All nodes terminal: both modes must produce a spanning tree, and
    // spanning-tree cost equals sum of node weights + chosen edges; the
    // node-weight part is fixed, so costs agree whenever both pick an
    // MST. Hold them to each other within the approximation bound.
    std::vector<uint32_t> all(g.num_nodes());
    for (uint32_t v = 0; v < g.num_nodes(); ++v) all[v] = v;
    auto classic = SolveNewst(g, all, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, all, Mode(ClosureMode::kMehlhorn));
    ASSERT_TRUE(classic.ok() && fast.ok());
    EXPECT_EQ(classic->nodes, fast->nodes);
    EXPECT_EQ(classic->edges.size(), fast->edges.size());
    // Both are spanning trees over identical node weights; edge choices
    // may differ where shortest-path expansions tie, but costs must stay
    // mutually bounded like every other instance.
    EXPECT_LE(fast->total_cost, 2.0 * classic->total_cost + 1e-9);
    EXPECT_LE(classic->total_cost, 2.0 * fast->total_cost + 1e-9);
  }
}

TEST(ClosureDifferentialTest, DisconnectedTerminalsDroppedIdentically) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    // Two rings with no bridge; terminals scattered over both.
    const uint32_t half = 12;
    WeightedGraphBuilder b(2 * half);
    for (uint32_t i = 0; i < half; ++i) {
      b.AddEdge(i, (i + 1) % half, rng.UniformDouble(0.2, 2.0));
      b.AddEdge(half + i, half + (i + 1) % half, rng.UniformDouble(0.2, 2.0));
    }
    WeightedGraph g = b.Build();
    auto terminals = RandomTerminals(&rng, 2 * half, 6);
    auto classic = SolveNewst(g, terminals, Mode(ClosureMode::kClassic));
    auto fast = SolveNewst(g, terminals, Mode(ClosureMode::kMehlhorn));
    ASSERT_TRUE(classic.ok() && fast.ok());
    // The dropped set is determined by components, not closure mode.
    EXPECT_EQ(classic->unreachable_terminals, fast->unreachable_terminals)
        << "trial " << trial;
    ExpectValidTree(g, classic.value(), terminals);
    ExpectValidTree(g, fast.value(), terminals);
  }
}

TEST(ClosureDifferentialTest, SolverOutputsMatchGoldenFingerprint) {
  // Bit-identity pin for the solver itself (ISSUE 9 satellite): the
  // mutual-bound sweeps above tolerate mode-to-mode drift by design, so
  // a hot-path rewrite (d-ary heap, kernel swap) that moved BOTH modes
  // the same way would sail through them. This hashes the exact trees —
  // node sets, edge lists, unreachable terminals, µ-quantized costs —
  // both modes emit across a randomized sweep and compares against a
  // constant captured before the d-ary-heap/intersect-kernel rewrite.
  // The d-ary heap must pop (dist, node) entries in the identical total
  // order the binary std::priority_queue did, so this constant must NOT
  // move. Re-capture with RPG_PRINT_FINGERPRINTS=1 only for a deliberate
  // solver-semantics change.
  uint64_t h = 1469598103934665603ULL;
  auto add = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  };
  Rng rng(987654321);
  for (uint32_t n : {16u, 48u, 110u}) {
    for (uint32_t k : {3u, 9u}) {
      for (int trial = 0; trial < 4; ++trial) {
        WeightedGraph g = RandomConnected(&rng, n, static_cast<int>(n) / 2);
        auto terminals = RandomTerminals(&rng, n, k);
        for (ClosureMode mode :
             {ClosureMode::kClassic, ClosureMode::kMehlhorn}) {
          auto r = SolveNewst(g, terminals, Mode(mode));
          ASSERT_TRUE(r.ok());
          add(r->nodes.size());
          for (uint32_t v : r->nodes) add(v);
          for (const auto& [u, v] : r->edges) {
            add(u);
            add(v);
          }
          for (uint32_t t : r->unreachable_terminals) add(t);
          add(static_cast<uint64_t>(std::llround(r->total_cost * 1e6)));
          add(r->stats.nodes_settled);
          add(r->stats.heap_pushes);
        }
      }
    }
  }
  if (std::getenv("RPG_PRINT_FINGERPRINTS") != nullptr) {
    std::printf("FINGERPRINT kGoldenSolver = 0x%016llxULL\n",
                static_cast<unsigned long long>(h));
  }
  constexpr uint64_t kGoldenSolver = 0x4e0a1ca8e28d7899ULL;
  EXPECT_EQ(h, kGoldenSolver)
      << "solver outputs changed — heap/kernel swaps must be "
         "pop-order-identical (see comment above)";
}

TEST(ClosureDifferentialTest, AblationFlagsRespectedInBothModes) {
  // -N / -E ablations must change the objective identically in both
  // closure modes (the flags act on the shared distance function).
  Rng rng(5);
  WeightedGraph g = RandomConnected(&rng, 50, 60);
  auto terminals = RandomTerminals(&rng, 50, 8);
  for (bool node_weights : {true, false}) {
    for (bool edge_weights : {true, false}) {
      NewstOptions classic_options = Mode(ClosureMode::kClassic);
      classic_options.use_node_weights = node_weights;
      classic_options.use_edge_weights = edge_weights;
      NewstOptions fast_options = classic_options;
      fast_options.closure_mode = ClosureMode::kMehlhorn;
      auto classic = SolveNewst(g, terminals, classic_options);
      auto fast = SolveNewst(g, terminals, fast_options);
      ASSERT_TRUE(classic.ok() && fast.ok());
      EXPECT_LE(fast->total_cost, 2.0 * classic->total_cost + 1e-9);
      EXPECT_LE(classic->total_cost, 2.0 * fast->total_cost + 1e-9);
    }
  }
}

}  // namespace
}  // namespace rpg::steiner
