// Tests for the observability layer (src/obs, docs/observability.md):
// span/trace units, Prometheus exposition conformance, and live-server
// integration — debug span breakdowns over /api/path?debug=1, /metrics
// scrape wellformedness, slow-query logging, and a concurrent
// scrape-while-serving exercise (run under TSan by the sanitizer CI job).

#include "obs/trace.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "../serve/serve_test_util.h"
#include "common/json_writer.h"
#include "obs/prometheus.h"
#include "serve/serve_engine.h"
#include "ui/http_client.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

namespace rpg::obs {
namespace {

// ------------------------------------------------------------ span units

TEST(SpanSetTest, AddStageMsAndTotalMs) {
  SpanSet set;
  set.Add(Stage::kSearch, 0, 2'000'000, 7);       // 2 ms
  set.Add(Stage::kSteiner, 2'000'000, 5'000'000, 100);  // 5 ms
  set.Add(Stage::kSteiner, 9'000'000, 1'000'000, 1);    // +1 ms
  EXPECT_EQ(set.count, 3u);
  EXPECT_DOUBLE_EQ(set.StageMs(Stage::kSearch), 2.0);
  EXPECT_DOUBLE_EQ(set.StageMs(Stage::kSteiner), 6.0);
  EXPECT_DOUBLE_EQ(set.StageMs(Stage::kRank), 0.0);
  EXPECT_DOUBLE_EQ(set.TotalMs(), 8.0);
  set.Clear();
  EXPECT_EQ(set.count, 0u);
  EXPECT_DOUBLE_EQ(set.TotalMs(), 0.0);
}

TEST(SpanSetTest, CapacityOverflowCountsDroppedInsteadOfWriting) {
  SpanSet set;
  for (uint32_t i = 0; i < SpanSet::kCapacity + 5; ++i) {
    set.Add(Stage::kRank, i, 1, 0);
  }
  EXPECT_EQ(set.count, SpanSet::kCapacity);
  EXPECT_EQ(set.dropped, 5u);
}

TEST(StageNameTest, EveryStageHasAStableLowercaseName) {
  const char* expected[kNumStages] = {
      "search",       "khop",    "subgraph",          "seed_realloc",
      "edge_cost",    "steiner", "reading_path",      "rank",
      "cache_lookup", "singleflight_wait", "batch_queue", "solve"};
  for (size_t i = 0; i < kNumStages; ++i) {
    EXPECT_STREQ(StageName(static_cast<Stage>(i)), expected[i]);
  }
}

TEST(TraceContextTest, NextRequestIdIsMonotonic) {
  uint64_t a = TraceContext::NextRequestId();
  uint64_t b = TraceContext::NextRequestId();
  EXPECT_GT(b, a);
}

TEST(TraceContextTest, ResetClearsSpansAndRestartsClock) {
  TraceContext ctx;
  ctx.AddSpan(Stage::kSearch, 0, 100, 1);
  ctx.set_query_key("old");
  ctx.Reset(42);
  EXPECT_EQ(ctx.request_id(), 42u);
  EXPECT_EQ(ctx.spans().count, 0u);
  EXPECT_LT(ctx.NowNs(), 1'000'000'000ull);  // origin restarted
}

TEST(TraceContextTest, AddSpanBetweenClampsPointsBeforeOrigin) {
  auto before = TraceContext::Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TraceContext ctx;
  auto after = TraceContext::Clock::now();
  ctx.AddSpanBetween(Stage::kBatchQueue, before, after, 3);
  ASSERT_EQ(ctx.spans().count, 1u);
  EXPECT_EQ(ctx.spans().spans[0].start_ns, 0u);  // clamped to origin
  EXPECT_GT(ctx.spans().spans[0].dur_ns, 0u);
  EXPECT_EQ(ctx.spans().spans[0].value, 3u);
}

TEST(TraceContextTest, AppendRebasedShiftsOntoRequestAxis) {
  SpanSet pipeline;
  pipeline.Add(Stage::kSearch, 0, 1000, 0);
  pipeline.Add(Stage::kRank, 5000, 2000, 0);
  TraceContext ctx;
  ctx.AppendRebased(pipeline, 100'000);
  ASSERT_EQ(ctx.spans().count, 2u);
  EXPECT_EQ(ctx.spans().spans[0].start_ns, 100'000u);
  EXPECT_EQ(ctx.spans().spans[1].start_ns, 105'000u);
  EXPECT_EQ(ctx.spans().spans[1].dur_ns, 2000u);
}

TEST(ScopedSpanTest, RecordsOnDestructionAndIgnoresNullContext) {
  TraceContext ctx;
  {
    ScopedSpan span(&ctx, Stage::kSubgraph);
    span.set_value(9);
  }
  ASSERT_EQ(ctx.spans().count, 1u);
  EXPECT_EQ(ctx.spans().spans[0].stage, Stage::kSubgraph);
  EXPECT_EQ(ctx.spans().spans[0].value, 9u);
  { ScopedSpan noop(nullptr, Stage::kRank); }  // must not crash
}

TEST(SlowQueryLogLineTest, RendersRequestKeySpansAndSteiner) {
  TraceContext ctx;
  ctx.set_request_id(7);
  ctx.set_query_key("q=\"hate speech\"|seeds=5");
  ctx.AddSpan(Stage::kCacheLookup, 10, 1000, 0);
  ctx.AddSpan(Stage::kSolve, 2000, 3'000'000, 1);
  steiner::SteinerStats stats;
  stats.nodes_settled = 123;
  ctx.AttachSteinerStats(stats);
  std::string line = SlowQueryLogLine(ctx, 310.5, 250.0);
  EXPECT_NE(line.find("\"slow_query\":{"), std::string::npos) << line;
  EXPECT_NE(line.find("\"request_id\":7"), std::string::npos) << line;
  // The key's quotes must be escaped (the line must stay one JSON doc).
  EXPECT_NE(line.find("q=\\\"hate speech\\\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"total_ms\":310.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"threshold_ms\":250"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cache_lookup\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"solve\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"nodes_settled\":123"), std::string::npos) << line;
}

// ------------------------------------------------- prometheus primitives

TEST(PrometheusTest, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("e2e_ms"), "e2e_ms");
  EXPECT_EQ(SanitizeMetricName("weird name-with.dots"),
            "weird_name_with_dots");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("a:b"), "a:b");  // colon is legal
}

TEST(PrometheusTest, FormatMetricValue) {
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-3.0), "-3");
  EXPECT_EQ(FormatMetricValue(0.25), "0.25");
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-Inf");
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInfEqualToCount) {
  Histogram h({0.0, 1.0, 10.0});
  h.Add(-0.5);  // underflow -> first bucket line
  h.Add(0.5);
  h.Add(5.0);
  h.Add(50.0);  // overflow -> only +Inf
  std::string out;
  AppendHistogram("lat_ms", h, &out);
  EXPECT_NE(out.find("# TYPE lat_ms histogram\n"), std::string::npos) << out;
  EXPECT_NE(out.find("lat_ms_bucket{le=\"0\"} 1\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("lat_ms_bucket{le=\"1\"} 2\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("lat_ms_bucket{le=\"10\"} 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("lat_ms_bucket{le=\"+Inf\"} 4\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("lat_ms_count 4\n"), std::string::npos) << out;
}

// --------------------------------------------------- live-server helpers

/// '+'-encodes spaces for query-string position (UrlDecode's inverse for
/// the characters the test queries contain).
std::string EncodeQueryValue(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ' ') c = '+';
  }
  return out;
}

/// Extracts the first number following `"key":` in a JSON document.
double JsonNumber(const std::string& body, const std::string& key) {
  size_t pos = body.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << "missing " << key << " in " << body;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(body.c_str() + pos + key.size() + 3, nullptr);
}

/// The full serving stack over the shared test workbench, listening on an
/// ephemeral loopback port.
class LiveStack {
 public:
  explicit LiveStack(ui::HttpServerOptions http_options = {}) {
    const eval::Workbench& wb = serve::SharedWorkbench();
    serve::ServeEngineOptions options;
    options.num_threads = 2;
    engine_ = std::make_unique<serve::ServeEngine>(&wb.repager(), options);
    service_ = std::make_unique<ui::RePagerService>(
        engine_.get(), &wb.repager(), &wb.titles(), &wb.years());
    server_ = std::make_unique<ui::HttpServer>(
        [this](const ui::HttpRequest& request, ui::HttpServer::Done done) {
          service_->HandleAsync(request, std::move(done));
        },
        http_options);
    service_->AttachServer(server_.get());
    port_ = server_->Start(0).value();
  }
  ~LiveStack() { server_->Stop(); }

  int port() const { return port_; }
  serve::ServeEngine& engine() { return *engine_; }

  ui::ClientResponse Fetch(const std::string& path) {
    ui::HttpClient client;
    EXPECT_TRUE(client.Connect(port_).ok());
    auto r = client.Fetch("GET", path);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : ui::ClientResponse{};
  }

 private:
  std::unique_ptr<serve::ServeEngine> engine_;
  std::unique_ptr<ui::RePagerService> service_;
  std::unique_ptr<ui::HttpServer> server_;
  int port_ = 0;
};

// ------------------------------------------------------- live-server tests

TEST(LiveTracingTest, DebugPathCoversEveryPipelineStage) {
  SetTracingEnabled(true);
  LiveStack stack;
  const auto& entry = serve::SharedWorkbench().bank().Get(0);
  std::string path = "/api/path?debug=1&q=" + EncodeQueryValue(entry.query);
  ui::ClientResponse r = stack.Fetch(path);
  ASSERT_EQ(r.status, 200) << r.body;
  ASSERT_NE(r.body.find("\"debug\":{"), std::string::npos) << r.body;
  for (Stage stage : kPipelineStages) {
    EXPECT_NE(r.body.find(std::string("\"") + StageName(stage) + "\":"),
              std::string::npos)
        << "missing stage " << StageName(stage);
  }
  double stage_total = JsonNumber(r.body, "stage_total_ms");
  double pipeline_total = JsonNumber(r.body, "pipeline_total_ms");
  if (kTracingCompiledIn) {
    // Spans must attribute real time and never exceed the pipeline wall
    // clock (small slack: the two totals come from two clock reads).
    EXPECT_GT(stage_total, 0.0);
    EXPECT_LE(stage_total, pipeline_total * 1.10 + 0.5);
    // The request-scoped trace rode along: serving-side spans + id.
    EXPECT_NE(r.body.find("\"trace\":{"), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"cache_lookup\""), std::string::npos) << r.body;
    EXPECT_NE(r.body.find("\"solve\""), std::string::npos) << r.body;
    EXPECT_GT(JsonNumber(r.body, "request_id"), 0.0);
  }

  // A cache hit keeps the original solve's attribution (stages are
  // cached with the result), and still carries this request's own trace.
  ui::ClientResponse cached = stack.Fetch(path);
  ASSERT_EQ(cached.status, 200);
  EXPECT_NE(cached.body.find("\"cache_hit\":true"), std::string::npos)
      << cached.body;
  if (kTracingCompiledIn) {
    EXPECT_NEAR(JsonNumber(cached.body, "stage_total_ms"), stage_total,
                1e-9);
  }

  // Without debug=1 there is no debug block.
  ui::ClientResponse plain =
      stack.Fetch("/api/path?q=" + EncodeQueryValue(entry.query));
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(plain.body.find("\"debug\""), std::string::npos);
}

TEST(LiveTracingTest, StatsStagesSectionAttributesSolveTime) {
  SetTracingEnabled(true);
  LiveStack stack;
  const auto& entry = serve::SharedWorkbench().bank().Get(1);
  ASSERT_EQ(stack.Fetch("/api/path?q=" + EncodeQueryValue(entry.query))
                .status,
            200);
  ui::ClientResponse r = stack.Fetch("/api/stats");
  ASSERT_EQ(r.status, 200);
  ASSERT_NE(r.body.find("\"stages\":{"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"pipeline\":{"), std::string::npos);
  EXPECT_NE(r.body.find("\"attributed_fraction\":"), std::string::npos);
  if (kTracingCompiledIn) {
    // One computed request: every stage histogram saw one observation.
    EXPECT_NE(r.body.find("\"steiner\":{\"count\":1"), std::string::npos)
        << r.body;
    double fraction = JsonNumber(r.body, "attributed_fraction");
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.1);
  }
}

TEST(LiveTracingTest, MetricsEndpointIsWellFormedExposition) {
  SetTracingEnabled(true);
  LiveStack stack;
  const auto& entry = serve::SharedWorkbench().bank().Get(2);
  ASSERT_EQ(stack.Fetch("/api/path?q=" + EncodeQueryValue(entry.query))
                .status,
            200);
  ui::ClientResponse r = stack.Fetch("/metrics");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.headers.at("content-type").find("text/plain"),
            std::string::npos);

  // Exposition conformance: every line is a comment or a sample; every
  // sample's family was announced by a # TYPE header; histogram buckets
  // are cumulative-monotone with +Inf == _count.
  std::regex type_re(R"(# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram))");
  std::regex sample_re(
      R"re(([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))re");
  std::map<std::string, std::string> family_type;
  std::map<std::string, std::vector<double>> bucket_counts;
  std::map<std::string, double> inf_count, sample_count;
  size_t samples = 0;
  size_t pos = 0;
  while (pos < r.body.size()) {
    size_t eol = r.body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "body must end in a newline";
    std::string line = r.body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    std::smatch m;
    if (line[0] == '#') {
      ASSERT_TRUE(std::regex_match(line, m, type_re)) << line;
      family_type[m[1]] = m[2];
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, m, sample_re)) << line;
    ++samples;
    std::string name = m[1];
    double value = std::strtod(std::string(m[4]).c_str(), nullptr);
    std::string base = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t at = name.rfind(suffix);
      if (at != std::string::npos && at == name.size() - strlen(suffix)) {
        base = name.substr(0, at);
      }
    }
    // Histogram series resolve their TYPE through the base name.
    ASSERT_TRUE(family_type.count(name) || family_type.count(base))
        << "sample before # TYPE: " << line;
    if (m[2].matched) {  // a _bucket line
      if (std::string(m[3]) == "+Inf") {
        inf_count[base] = std::strtod(std::string(m[4]).c_str(), nullptr);
      } else {
        bucket_counts[base].push_back(
            std::strtod(std::string(m[4]).c_str(), nullptr));
      }
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0 &&
               family_type.count(base) &&
               family_type[base] == "histogram") {
      sample_count[base] = value;
    }
  }
  EXPECT_GT(samples, 20u);
  // The stage histograms and the serving instruments must be present.
  EXPECT_TRUE(family_type.count("rpg_e2e_ms"));
  EXPECT_TRUE(family_type.count("rpg_requests_total"));
  EXPECT_TRUE(family_type.count("rpg_stage_steiner_ms"));
  EXPECT_TRUE(family_type.count("rpg_pipeline_total_ms"));
  EXPECT_TRUE(family_type.count("rpg_http_requests_handled"));
  ASSERT_FALSE(bucket_counts.empty());
  for (const auto& [base, counts] : bucket_counts) {
    for (size_t i = 1; i < counts.size(); ++i) {
      EXPECT_LE(counts[i - 1], counts[i]) << base << " bucket " << i;
    }
    ASSERT_TRUE(inf_count.count(base)) << base << " missing +Inf";
    if (!counts.empty()) {
      EXPECT_LE(counts.back(), inf_count[base]) << base;
    }
    ASSERT_TRUE(sample_count.count(base)) << base << " missing _count";
    EXPECT_EQ(inf_count[base], sample_count[base]) << base;
  }
}

TEST(LiveTracingTest, ConcurrentScrapeWhileServingStaysConsistent) {
  SetTracingEnabled(true);
  LiveStack stack;
  const auto& entry = serve::SharedWorkbench().bank().Get(3);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Scrapers: hammer /metrics and /api/stats while solves run.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      ui::HttpClient client;
      if (!client.Connect(stack.port()).ok()) {
        ++failures;
        return;
      }
      while (!stop.load()) {
        for (const char* path : {"/metrics", "/api/stats"}) {
          auto r = client.Fetch("GET", path);
          if (!r.ok() || r->status != 200) ++failures;
        }
      }
    });
  }
  // Solvers: distinct seeds values defeat the cache so spans are being
  // written concurrently with every scrape.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ui::HttpClient client;
      if (!client.Connect(stack.port()).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 6; ++i) {
        std::string path = "/api/path?debug=1&q=" +
                           EncodeQueryValue(entry.query) +
                           "&seeds=" + std::to_string(4 + t * 6 + i);
        auto r = client.Fetch("GET", path);
        if (!r.ok() || r->status != 200) ++failures;
      }
    });
  }
  threads[2].join();
  threads[3].join();
  stop.store(true);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(LiveTracingTest, SlowQueryThresholdEmitsOneStructuredLine) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SetTracingEnabled(true);
  // A plain handler server with a deliberate 20 ms stall: deterministic
  // against the 1 ms threshold, no workbench timing dependence. The
  // handler records a span through the request's trace exactly like the
  // serve layers do.
  ui::HttpServerOptions options;
  options.slow_query_threshold = std::chrono::milliseconds(1);
  ui::HttpServer server(
      [](const ui::HttpRequest& request, ui::HttpServer::Done done) {
        if (request.trace) {
          uint64_t t0 = request.trace->NowNs();
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          request.trace->AddSpan(Stage::kSolve, t0,
                                 request.trace->NowNs() - t0, 1);
          request.trace->set_query_key("slow-test-key");
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        done({200, "text/plain", "ok"});
      },
      options);
  int port = server.Start(0).value();

  // Capture stderr around the fetch: the slow-query line is written
  // before the response completes, so it is fully flushed by the time
  // the client has the body.
  int saved = dup(STDERR_FILENO);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  dup2(fds[1], STDERR_FILENO);
  close(fds[1]);

  ui::HttpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  auto r = client.Fetch("GET", "/slow");
  dup2(saved, STDERR_FILENO);
  close(saved);
  std::string captured;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) captured.append(buf, n);
  close(fds[0]);
  server.Stop();

  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(captured.find("\"slow_query\":{"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("\"query_key\":\"slow-test-key\""),
            std::string::npos)
      << captured;
  EXPECT_NE(captured.find("\"solve\""), std::string::npos) << captured;
  EXPECT_NE(captured.find("\"threshold_ms\":1"), std::string::npos)
      << captured;
  double total = 0;
  size_t at = captured.find("\"total_ms\":");
  ASSERT_NE(at, std::string::npos);
  total = std::strtod(captured.c_str() + at + 11, nullptr);
  EXPECT_GE(total, 20.0);
}

#if !defined(RPG_TRACING_DISABLED)
TEST(RuntimeToggleTest, DisabledTracingRecordsNoSpans) {
  SetTracingEnabled(false);
  const eval::Workbench& wb = serve::SharedWorkbench();
  const auto& entry = wb.bank().Get(4);
  auto result = wb.repager().Generate(entry.query, {});
  SetTracingEnabled(true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stages.count, 0u);

  auto traced = wb.repager().Generate(entry.query, {});
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(traced->stages.count, kNumPipelineStages);
}
#endif

}  // namespace
}  // namespace rpg::obs
