/// \file
/// Fuzz target: client-side HTTP response parsing. Drives
/// ui::ParseHttpResponse — the socket-free seam HttpClient::FetchOnce
/// frames every response through — with arbitrary bytes, checking the
/// framing invariants a hostile or broken server must not be able to
/// violate (a misframed response poisons every later fetch on the
/// keep-alive connection).
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.h"
#include "ui/http_client.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::http_response {

inline void CheckOne(const uint8_t* data, size_t size) {
  const std::string buffer(reinterpret_cast<const char*>(data), size);
  ui::ResponseParseResult parsed = ui::ParseHttpResponse(buffer);
  switch (parsed.verdict) {
    case ui::ResponseParseResult::Verdict::kResponse:
      RPG_CHECK(parsed.consumed >= 4 && parsed.consumed <= buffer.size());
      RPG_CHECK(parsed.response.status >= 100 &&
                parsed.response.status <= 999);
      RPG_CHECK(parsed.response.body.size() <= parsed.consumed);
      break;
    case ui::ResponseParseResult::Verdict::kError:
      RPG_CHECK(!parsed.error.empty());
      break;
    case ui::ResponseParseResult::Verdict::kNeedMore:
      break;
  }

  // Prefix stability: a complete response parsed from a prefix must
  // parse identically from the full buffer (FetchOnce re-parses after
  // every read; a flip between reads would misframe the stream).
  if (size > 1) {
    ui::ResponseParseResult partial =
        ui::ParseHttpResponse(buffer.substr(0, size / 2));
    if (partial.verdict == ui::ResponseParseResult::Verdict::kResponse) {
      ui::ResponseParseResult full = ui::ParseHttpResponse(buffer);
      RPG_CHECK(full.verdict ==
                    ui::ResponseParseResult::Verdict::kResponse &&
                full.consumed == partial.consumed &&
                full.response.status == partial.response.status);
    }
  }
}

}  // namespace rpg::fuzzing::http_response

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::http_response::CheckOne(data, size);
  return 0;
}
