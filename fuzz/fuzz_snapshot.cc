/// \file
/// Fuzz target: the snapshot loading path. Feeds arbitrary bytes to
/// ServingState::LoadFromBuffer twice — once with full checksum
/// verification (the serving default: corrupt inputs must die with a
/// typed InvalidArgument, never a crash) and once with checksums
/// disabled, which strips the FNV armor so mutated inputs reach the
/// section decoders and their structural validation (varint bounds,
/// CSR monotonicity, postings doc-id range, permutation checks) has to
/// hold on its own. When an input is accepted, every substrate the
/// loader wired up is walked — adjacency spans, title/year/pagerank
/// arrays, one BM25 query, one embedding row — so any lie the
/// validators missed becomes an out-of-bounds read under ASan.
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <climits>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "snapshot/serving_state.h"
#include "snapshot/snapshot_reader.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::snapshot_load {

inline void WalkState(const snapshot::ServingState& state) {
  const graph::CitationGraph& g = state.graph();
  const size_t n = g.num_nodes();
  RPG_CHECK(state.titles().size() == n);
  RPG_CHECK(state.years().size() == n);
  RPG_CHECK(state.pagerank().size() == n);
  RPG_CHECK(state.venue_scores().size() == n);
  size_t title_bytes = 0;
  for (graph::PaperId u = 0; u < n; ++u) {
    title_bytes += state.titles()[u].size();
    for (graph::PaperId v : g.OutNeighbors(u)) RPG_CHECK(v < n);
    for (graph::PaperId v : g.InNeighbors(u)) RPG_CHECK(v < n);
  }
  RPG_CHECK(title_bytes < (1u << 30));
  if (!state.new_to_old().empty()) {
    RPG_CHECK(state.new_to_old().size() == n);
  }
  if (n > 0) {
    // Touch the zero-copy embedding row and run one real query.
    auto row = state.matcher().doc_embedding(0);
    RPG_CHECK(row.size() ==
              static_cast<size_t>(state.matcher().embedder().dim()));
    auto hits = state.engine().Search(state.titles()[0], 3, INT32_MAX);
    RPG_CHECK(hits.size() <= 3);
  }
}

inline void CheckOne(const uint8_t* data, size_t size) {
  std::vector<uint8_t> bytes(data, data + size);

  // Pass 1: serving configuration — checksums verified at open.
  auto armored =
      snapshot::ServingState::LoadFromBuffer(bytes, {.verify_checksums = true});
  if (armored.ok()) WalkState(*armored.value());

  // Pass 2: checksums off, so mutations actually reach the decoders.
  auto bare = snapshot::ServingState::LoadFromBuffer(
      std::move(bytes), {.verify_checksums = false});
  if (bare.ok()) WalkState(*bare.value());
}

}  // namespace rpg::fuzzing::snapshot_load

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::snapshot_load::CheckOne(data, size);
  return 0;
}
