/// \file
/// Fuzz target: binary citation-graph deserialization. Feeds arbitrary
/// bytes to graph::GraphIo::ReadBinaryFromStream and, when a graph is
/// accepted, walks every adjacency span the accessors expose — any
/// structural lie the loader's CSR validation misses becomes an
/// out-of-bounds read here under ASan instead of a latent crash in the
/// solve pipeline. This is the harness that found the resize-bomb and
/// missing-offset-validation bugs fixed in the same PR (see
/// tests/graph/graph_io corpus regressions).
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "graph/graph_io.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::graph_io {

inline void CheckOne(const uint8_t* data, size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size),
      std::ios::binary);
  auto graph_or = graph::GraphIo::ReadBinaryFromStream(is, "fuzz input");
  if (!graph_or.ok()) return;  // rejected cleanly: exactly what we want

  // Accepted: every span must be walkable and every target in range.
  const graph::CitationGraph& g = graph_or.value();
  const size_t n = g.num_nodes();
  for (graph::PaperId u = 0; u < n; ++u) {
    size_t out_degree = 0;
    for (graph::PaperId v : g.OutNeighbors(u)) {
      RPG_CHECK(v < n);
      ++out_degree;
    }
    RPG_CHECK(out_degree == g.OutDegree(u));
    for (graph::PaperId v : g.InNeighbors(u)) {
      RPG_CHECK(v < n);
    }
  }
}

}  // namespace rpg::fuzzing::graph_io

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::graph_io::CheckOne(data, size);
  return 0;
}
