/// \file
/// Bounded smoke runner for every fuzz harness, libFuzzer-free — the
/// tier-1 `fuzz_smoke` ctest. Each harness body is #included with
/// RPG_FUZZ_ENTRY renamed, then driven over its checked-in seed corpus
/// (fuzz/corpus/<target>/) plus a fixed budget of deterministic
/// mutations of those seeds, so the harness code and its parsers are
/// exercised on every build — with gcc, without clang or libFuzzer.
/// The real coverage-guided runs use the fuzz_<target> binaries
/// (-DRPG_BUILD_FUZZERS=ON, clang); see docs/fuzzing.md.
///
/// Usage: rpg_fuzz_smoke [corpus_root]   (default: fuzz/corpus)

#define RPG_FUZZ_ENTRY FuzzHttpRequest
#include "fuzz_http_request.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY FuzzHttpResponse
#include "fuzz_http_response.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY FuzzGraphIo
#include "fuzz_graph_io.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY FuzzText
#include "fuzz_text.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY FuzzApiPath
#include "fuzz_api_path.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY FuzzSnapshot
#include "fuzz_snapshot.cc"  // NOLINT
#undef RPG_FUZZ_ENTRY

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

using FuzzEntry = int (*)(const uint8_t*, size_t);

struct SmokeTarget {
  const char* name;
  FuzzEntry entry;
  /// Mutation budget: cheap parsers get many, the api_path harness
  /// (real solves behind it) gets few.
  size_t mutations;
};

/// xorshift64 — deterministic across platforms, no <random> weight.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

/// One deterministic mutation of a seed: flip, overwrite, insert,
/// truncate, or duplicate a slice — the classic byte-level moves.
std::string Mutate(const std::string& seed, uint64_t* rng) {
  std::string out = seed;
  if (out.empty()) out.push_back(static_cast<char>(NextRand(rng)));
  switch (NextRand(rng) % 5) {
    case 0:  // bit flip
      out[NextRand(rng) % out.size()] ^=
          static_cast<char>(1u << (NextRand(rng) % 8));
      break;
    case 1:  // overwrite with a random byte
      out[NextRand(rng) % out.size()] = static_cast<char>(NextRand(rng));
      break;
    case 2:  // insert a random byte
      out.insert(out.begin() + NextRand(rng) % (out.size() + 1),
                 static_cast<char>(NextRand(rng)));
      break;
    case 3:  // truncate
      out.resize(NextRand(rng) % (out.size() + 1));
      break;
    default: {  // duplicate a slice
      const size_t from = NextRand(rng) % out.size();
      const size_t len =
          std::min<size_t>(NextRand(rng) % 16 + 1, out.size() - from);
      out.insert(NextRand(rng) % (out.size() + 1),
                 out.substr(from, len));
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path corpus_root =
      argc > 1 ? argv[1] : "fuzz/corpus";
  const SmokeTarget targets[] = {
      {"http_request", &FuzzHttpRequest, 2000},
      {"http_response", &FuzzHttpResponse, 2000},
      {"graph_io", &FuzzGraphIo, 2000},
      {"text", &FuzzText, 2000},
      {"api_path", &FuzzApiPath, 200},
      // Each run decodes the image twice (checksums on/off); the valid
      // seed is a real (tiny) snapshot, so keep the budget moderate.
      {"snapshot", &FuzzSnapshot, 600},
  };

  size_t total_runs = 0;
  for (const SmokeTarget& target : targets) {
    const std::filesystem::path dir = corpus_root / target.name;
    std::vector<std::string> seeds;
    if (std::filesystem::is_directory(dir)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic order
      for (const auto& file : files) {
        std::ifstream is(file, std::ios::binary);
        seeds.emplace_back(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
      }
    }
    if (seeds.empty()) {
      std::fprintf(stderr, "[fuzz_smoke] FAIL: no seeds in %s\n",
                   dir.string().c_str());
      return 1;
    }
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    size_t runs = 0;
    for (const std::string& seed : seeds) {
      target.entry(reinterpret_cast<const uint8_t*>(seed.data()),
                   seed.size());
      ++runs;
    }
    for (size_t i = 0; i < target.mutations; ++i) {
      const std::string input = Mutate(seeds[i % seeds.size()], &rng);
      target.entry(reinterpret_cast<const uint8_t*>(input.data()),
                   input.size());
      ++runs;
    }
    std::printf("[fuzz_smoke] %-13s %3zu seeds, %4zu runs: OK\n",
                target.name, seeds.size(), runs);
    total_runs += runs;
  }
  std::printf("[fuzz_smoke] all targets passed (%zu total runs)\n",
              total_runs);
  return 0;
}
