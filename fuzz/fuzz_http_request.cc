/// \file
/// Fuzz target: server-side HTTP request parsing and framing. Drives the
/// exact code the epoll reactor runs per connection — FrameOneRequest
/// (the socket-free seam extracted from Poller::ParseAndDispatchOne) plus
/// the exposed sub-parsers — with arbitrary byte streams, under both
/// production and deliberately tiny limits so the 431/413 ceilings get
/// exercised, and with both peer-EOF flavors.
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/logging.h"
#include "ui/http_server.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::http_request {

inline void CheckFraming(const std::string& in, bool peer_eof,
                         const ui::FramingLimits& limits) {
  ui::FrameResult framed = ui::FrameOneRequest(in, peer_eof, limits);
  switch (framed.verdict) {
    case ui::FrameResult::Verdict::kRequest:
      // A framed request consumed real bytes, within the buffer, and
      // honors the ceilings it was parsed under.
      RPG_CHECK(framed.consumed >= 4 && framed.consumed <= in.size());
      RPG_CHECK(!framed.request.path.empty() &&
                framed.request.path[0] == '/');
      RPG_CHECK(framed.request.body.size() <= limits.max_body_bytes);
      break;
    case ui::FrameResult::Verdict::kError:
      RPG_CHECK(framed.error_status == 400 || framed.error_status == 413 ||
                framed.error_status == 431);
      break;
    case ui::FrameResult::Verdict::kNeedMore:
      // Needing more bytes with the peer gone would wedge a connection
      // forever; the seam must resolve EOF to kClose or an answer.
      RPG_CHECK(!peer_eof);
      break;
    case ui::FrameResult::Verdict::kClose:
      break;
  }
}

inline void CheckOne(const uint8_t* data, size_t size) {
  const std::string in(reinterpret_cast<const char*>(data), size);

  ui::FramingLimits production;
  ui::FramingLimits tiny;
  tiny.max_header_bytes = 64;
  tiny.max_body_bytes = 16;
  for (const ui::FramingLimits& limits : {production, tiny}) {
    CheckFraming(in, /*peer_eof=*/false, limits);
    CheckFraming(in, /*peer_eof=*/true, limits);
  }

  // Split delivery: a prefix must never frame a request the full buffer
  // would not (framing is prefix-stable; the reactor re-parses as bytes
  // arrive).
  if (size > 1) {
    const std::string prefix = in.substr(0, size / 2);
    ui::FrameResult partial =
        ui::FrameOneRequest(prefix, /*peer_eof=*/false, production);
    if (partial.verdict == ui::FrameResult::Verdict::kRequest) {
      ui::FrameResult full =
          ui::FrameOneRequest(in, /*peer_eof=*/false, production);
      RPG_CHECK(full.verdict == ui::FrameResult::Verdict::kRequest &&
                full.consumed == partial.consumed);
    }
  }

  // The exposed sub-parsers on the raw bytes.
  std::map<std::string, std::string> headers;
  ui::ParseHeaderLines(in, &headers);
  size_t content_length = 0;
  (void)ui::ParseContentLength(in, &content_length);
  (void)ui::UrlDecode(in);
  (void)ui::ParseRequestLine(in);
}

}  // namespace rpg::fuzzing::http_request

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::http_request::CheckOne(data, size);
  return 0;
}
