/// \file
/// Fuzz target: the /api/path query path end to end, minus sockets.
/// Arbitrary bytes are framed through FrameOneRequest (the reactor's
/// request seam) and, when they frame a complete request, routed through
/// a real RePagerService over a small static workbench — so parameter
/// parsing (ParseBoundedInt), canonicalization, the cache, and the JSON
/// response renderer all run against adversarial request targets. The
/// response body must always be a structurally well-formed JSON document
/// (the round-trip the embedded UI depends on).
///
/// Heavier than the other harnesses (one-time workbench build, real
/// solves on cache misses); run it with fewer iterations.
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/logging.h"
#include "eval/workbench.h"
#include "serve/serve_engine.h"
#include "ui/http_server.h"
#include "ui/repager_service.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::api_path {

/// One process-wide serving stack over a tiny corpus (built on first
/// use, intentionally leaked — libFuzzer calls the entry millions of
/// times).
inline ui::RePagerService& Service() {
  static ui::RePagerService* service = [] {
    eval::WorkbenchOptions options;
    options.corpus.hierarchy.areas_per_domain = 2;
    options.corpus.hierarchy.topics_per_area = 2;
    options.corpus.papers_per_topic = 30;
    options.corpus.papers_per_area = 10;
    options.corpus.papers_per_domain = 5;
    options.corpus.num_surveys = 20;
    options.corpus.seed = 77;
    auto* wb = eval::Workbench::Create(options).value().release();
    serve::ServeEngineOptions engine_options;
    engine_options.num_threads = 1;
    auto* engine = new serve::ServeEngine(&wb->repager(), engine_options);
    return new ui::RePagerService(engine, &wb->repager(), &wb->titles(),
                                  &wb->years());
  }();
  return *service;
}

/// Structural JSON well-formedness: strings (with escapes) scan cleanly
/// and braces/brackets balance outside them. Not a full parser — enough
/// to catch an unescaped quote or truncated document from the renderer.
inline bool JsonIsBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

inline void CheckOne(const uint8_t* data, size_t size) {
  const std::string in(reinterpret_cast<const char*>(data), size);

  // The parameter parser on the raw bytes, against both bound sets the
  // route layer uses.
  int value = 0;
  (void)ui::ParseBoundedInt(in, 1, 1000, &value);
  (void)ui::ParseBoundedInt(in, 1000, 2100, &value);

  ui::FrameResult framed =
      ui::FrameOneRequest(in, /*peer_eof=*/true, ui::FramingLimits{});
  if (framed.verdict != ui::FrameResult::Verdict::kRequest) return;

  ui::HttpResponse response = Service().Handle(framed.request);
  RPG_CHECK(response.status == 200 || response.status == 400 ||
            response.status == 404 || response.status == 405 ||
            response.status == 429 || response.status == 503);
  RPG_CHECK(!response.body.empty());
  if (response.content_type == "application/json") {
    RPG_CHECK(JsonIsBalanced(response.body));
  }
}

}  // namespace rpg::fuzzing::api_path

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::api_path::CheckOne(data, size);
  return 0;
}
