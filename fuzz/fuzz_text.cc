/// \file
/// Fuzz target: the text normalization chain — Tokenize (under several
/// option combinations) → PorterStem → Vocabulary interning, plus
/// NGrams and the stopword filter. This is the first code every raw
/// query string and paper title flows through, so it must hold up
/// against arbitrary (including non-ASCII and embedded-NUL) bytes.
///
/// Build: -DRPG_BUILD_FUZZERS=ON with clang (libFuzzer); the same body
/// also runs libFuzzer-free inside fuzz_smoke.cc (tier-1 ctest).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

#ifndef RPG_FUZZ_ENTRY
#define RPG_FUZZ_ENTRY LLVMFuzzerTestOneInput
#endif

namespace rpg::fuzzing::text {

inline void CheckOne(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  rpg::text::TokenizerOptions variants[3];
  variants[1].lowercase = false;
  variants[2].keep_numbers = false;
  variants[2].min_token_length = 3;

  for (const rpg::text::TokenizerOptions& options : variants) {
    std::vector<std::string> tokens = rpg::text::Tokenize(input, options);
    rpg::text::Vocabulary vocab;
    for (const std::string& token : tokens) {
      RPG_CHECK(!token.empty() &&
                token.size() >= options.min_token_length);
      const std::string stem = rpg::text::PorterStem(token);
      // Stemming only ever shortens (Porter removes suffixes) and never
      // erases a word outright.
      RPG_CHECK(!stem.empty() && stem.size() <= token.size());
      (void)rpg::text::IsStopword(token);
      const rpg::text::TermId id = vocab.GetOrAdd(stem);
      RPG_CHECK(vocab.Lookup(stem) == id);
      RPG_CHECK(vocab.TermOf(id) == stem);
    }
    // Encode must intern exactly the token set.
    std::vector<rpg::text::TermId> ids = vocab.EncodeExisting(tokens);
    RPG_CHECK(ids.size() <= tokens.size());
    for (size_t n = 1; n <= 3; ++n) {
      std::vector<std::string> grams = rpg::text::NGrams(tokens, n);
      RPG_CHECK(grams.size() ==
                (tokens.size() >= n ? tokens.size() - n + 1 : 0));
    }
  }
}

}  // namespace rpg::fuzzing::text

extern "C" int RPG_FUZZ_ENTRY(const uint8_t* data, size_t size) {
  rpg::fuzzing::text::CheckOne(data, size);
  return 0;
}
